//! The `jp` subcommands.

use crate::args::{CliError, ParsedArgs};
use jp_graph::{betti_number, generators, properties, BipartiteGraph};
use jp_pebble::analysis::SchemeReport;
use jp_pebble::approx::{
    pebble_dfs_partition, pebble_equijoin, pebble_euler_trails, pebble_nearest_neighbor,
    pebble_path_cover,
};
use jp_pebble::memo::Memo;
use jp_pebble::{bounds, exact, exact_bb, PebblingScheme};
use jp_relalg::{algorithms, realize, workload};
use std::io::Write;
use std::time::Instant;

type Out<'a> = &'a mut dyn Write;

fn rt(msg: impl std::fmt::Display) -> CliError {
    CliError::Runtime(msg.to_string())
}

fn flag_true(a: &ParsedArgs, key: &str) -> bool {
    a.opt(key)
        .is_some_and(|v| v == "true" || v == "1" || v == "yes")
}

/// Parses `--memo true` / `--memo-file PATH` into an optional component
/// cache, preloading persisted entries when the file already exists
/// (corrupt lines are skipped per entry, reported, and never fatal).
fn open_memo(a: &ParsedArgs, out: Out) -> Result<(Option<Memo>, Option<String>), CliError> {
    let memo_file = a.opt("memo-file").map(str::to_string);
    if !flag_true(a, "memo") && memo_file.is_none() {
        return Ok((None, None));
    }
    let memo = Memo::new();
    if let Some(path) = &memo_file {
        if std::path::Path::new(path).exists() {
            let (loaded, skipped) = memo
                .load_jsonl(std::path::Path::new(path))
                .map_err(|e| rt(format!("reading memo file {path}: {e}")))?;
            writeln!(
                out,
                "memo: loaded {loaded} entries from {path} ({skipped} corrupt lines skipped)"
            )
            .map_err(CliError::io)?;
        }
    }
    Ok((Some(memo), memo_file))
}

/// Prints the memo's hit statistics and persists it when a
/// `--memo-file` was given.
fn close_memo(memo: &Option<Memo>, memo_file: &Option<String>, out: Out) -> Result<(), CliError> {
    let Some(m) = memo else {
        return Ok(());
    };
    let st = m.stats();
    writeln!(
        out,
        "memo: {} recognized, {} hits, {} misses, {} inserts, {} rejected",
        st.recognized, st.hits, st.misses, st.inserts, st.rejects
    )
    .map_err(CliError::io)?;
    if let Some(path) = memo_file {
        m.save_jsonl(std::path::Path::new(path))
            .map_err(|e| rt(format!("writing memo file {path}: {e}")))?;
        writeln!(out, "memo ({} entries) written to {path}", m.len()).map_err(CliError::io)?;
    }
    Ok(())
}

fn load_graph(path: &str) -> Result<BipartiteGraph, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| rt(format!("reading {path}: {e}")))?;
    serde_json::from_str(&text).map_err(|e| rt(format!("parsing {path}: {e}")))
}

/// `jp generate <family> [params…] [--out FILE]`
pub fn generate(args: &[String], out: Out) -> Result<(), CliError> {
    let a = ParsedArgs::parse(args)?;
    let family = a.pos(0, "family name")?;
    let g = match family {
        "complete-bipartite" => {
            generators::complete_bipartite(a.pos_parse(1, "K")?, a.pos_parse(2, "L")?)
        }
        "matching" => generators::matching(a.pos_parse(1, "M")?),
        "path" => generators::path(a.pos_parse(1, "M")?),
        "cycle" => generators::cycle(a.pos_parse(1, "K")?),
        "star" => generators::star(a.pos_parse(1, "N")?),
        "spider" => generators::spider(a.pos_parse(1, "N")?),
        "random" => generators::random_bipartite(
            a.pos_parse(1, "K")?,
            a.pos_parse(2, "L")?,
            a.pos_parse(3, "P")?,
            a.pos_parse(4, "SEED")?,
        ),
        "random-connected" => generators::random_connected_bipartite(
            a.pos_parse(1, "K")?,
            a.pos_parse(2, "L")?,
            a.pos_parse(3, "M")?,
            a.pos_parse(4, "SEED")?,
        ),
        other => return Err(CliError::Usage(format!("unknown family `{other}`"))),
    };
    match a.opt("out") {
        Some(path) => {
            writeln!(
                out,
                "generated {family}: |R| = {}, |S| = {}, m = {}, β₀ = {}",
                g.left_count(),
                g.right_count(),
                g.edge_count(),
                betti_number(&g)
            )
            .map_err(CliError::io)?;
            let json = serde_json::to_string_pretty(&g).map_err(rt)?;
            std::fs::write(path, json).map_err(|e| rt(format!("writing {path}: {e}")))?;
            writeln!(out, "written to {path}").map_err(CliError::io)?;
        }
        None => {
            // JSON only: `jp generate … > g.json` must stay loadable
            let json = serde_json::to_string(&g).map_err(rt)?;
            writeln!(out, "{json}").map_err(CliError::io)?;
        }
    }
    Ok(())
}

/// `jp info <graph.json>`
pub fn info(args: &[String], out: Out) -> Result<(), CliError> {
    let a = ParsedArgs::parse(args)?;
    let g = load_graph(a.pos(0, "graph file")?)?;
    let m = g.edge_count();
    writeln!(
        out,
        "vertices: |R| = {}, |S| = {}",
        g.left_count(),
        g.right_count()
    )
    .map_err(CliError::io)?;
    writeln!(out, "edges (join output size): m = {m}").map_err(CliError::io)?;
    writeln!(out, "components: β₀ = {}", betti_number(&g)).map_err(CliError::io)?;
    if let Some((dmin, dmax)) = properties::degree_range(&g) {
        writeln!(out, "degrees: {dmin}..{dmax}").map_err(CliError::io)?;
    }
    let equi = properties::is_equijoin_graph(&g);
    writeln!(
        out,
        "equijoin-realizable: {}",
        if equi { "yes" } else { "no" }
    )
    .map_err(CliError::io)?;
    writeln!(
        out,
        "pebbling bounds: {} ≤ π(G) ≤ {} (Theorem 3.1 upper bound: {})",
        bounds::best_lower_bound(&g),
        bounds::weak_upper_bound_effective(&g),
        bounds::upper_bound_effective(&g)
    )
    .map_err(CliError::io)?;
    let metrics = jp_graph::metrics::metrics(&g);
    writeln!(
        out,
        "structure: density {:.3}, diameter {}, {} leaves, largest component {} edges",
        metrics.density, metrics.diameter, metrics.leaves, metrics.largest_component_edges
    )
    .map_err(CliError::io)?;
    Ok(())
}

/// Default branch-and-bound node budget for `jp pebble --algo bb`.
const DEFAULT_BB_BUDGET: u64 = 50_000_000;

fn run_pebbler(
    algo: &str,
    g: &BipartiteGraph,
    budget: u64,
    threads: usize,
    memo: Option<&Memo>,
) -> Result<PebblingScheme, CliError> {
    match (algo, memo) {
        // memoized entry points: recognizers + cache in front of the solver
        ("auto", Some(m)) => jp_pebble::memo::solve_with_memo(g, m, threads).map_err(rt),
        ("exact", Some(m)) => exact::optimal_scheme_memo(g, m).map_err(rt),
        ("portfolio", Some(m)) => {
            jp_pebble::portfolio::portfolio_scheme_memo(g, threads, Some(m)).map_err(rt)
        }
        ("auto", None) => {
            if properties::is_equijoin_graph(g) {
                pebble_equijoin(g).map_err(rt)
            } else {
                pebble_dfs_partition(g).map_err(rt)
            }
        }
        ("equijoin", _) => pebble_equijoin(g).map_err(rt),
        ("dfs", _) => pebble_dfs_partition(g).map_err(rt),
        ("euler", _) => pebble_euler_trails(g).map_err(rt),
        ("cover", _) => pebble_path_cover(g).map_err(rt),
        ("nn", _) => pebble_nearest_neighbor(g).map_err(rt),
        ("exact", None) => exact::optimal_scheme(g).map_err(rt),
        ("bb", _) => exact_bb::optimal_scheme_bb_par(g, budget, threads).map_err(rt),
        ("portfolio", None) => jp_pebble::portfolio::portfolio_scheme(g, threads).map_err(rt),
        (other, _) => Err(CliError::Usage(format!("unknown algorithm `{other}`"))),
    }
}

/// `jp pebble <graph.json> [--algo A] [--budget NODES] [--threads N]
/// [--memo true] [--memo-file F] [--out scheme.json]`
pub fn pebble(args: &[String], out: Out) -> Result<(), CliError> {
    let a = ParsedArgs::parse(args)?;
    let g = load_graph(a.pos(0, "graph file")?)?;
    let algo = a.opt("algo").unwrap_or("auto");
    let budget: u64 = a.opt_parse("budget", DEFAULT_BB_BUDGET)?;
    let threads: usize = a.opt_parse("threads", 1)?;
    if threads == 0 {
        return Err(CliError::Usage("--threads must be at least 1".into()));
    }
    if algo == "all" {
        for (name, report) in jp_pebble::analysis::compare_all(&g) {
            writeln!(out, "{name:<28} {report}").map_err(CliError::io)?;
        }
        return Ok(());
    }
    let (memo, memo_file) = open_memo(&a, &mut *out)?;
    let t0 = Instant::now();
    let scheme = run_pebbler(algo, &g, budget, threads, memo.as_ref())?;
    let dt = t0.elapsed();
    scheme.validate(&g).map_err(rt)?;
    let report = SchemeReport::new(&g, &scheme);
    writeln!(out, "algorithm: {algo}").map_err(CliError::io)?;
    writeln!(out, "{report}").map_err(CliError::io)?;
    writeln!(
        out,
        "π = {} ({}), {:.3} ms",
        report.effective_cost,
        if report.is_perfect() {
            "perfect"
        } else {
            "imperfect"
        },
        dt.as_secs_f64() * 1e3
    )
    .map_err(CliError::io)?;
    if a.opt("steps")
        .is_some_and(|v| v == "true" || v == "1" || v == "yes")
    {
        writeln!(out, "\nstep  configuration        deletes").map_err(CliError::io)?;
        for st in scheme.replay(&g) {
            writeln!(
                out,
                "{:>4}  {:<18}  {}",
                st.index,
                st.config.to_string(),
                match st.deletes {
                    Some(e) => {
                        let (l, r) = g.edges()[e];
                        format!("edge {e} = (r{l}, s{r})")
                    }
                    None => "— (jump)".to_string(),
                }
            )
            .map_err(CliError::io)?;
        }
    }
    if let Some(path) = a.opt("out") {
        let json = serde_json::to_string(&scheme).map_err(rt)?;
        std::fs::write(path, json).map_err(|e| rt(format!("writing {path}: {e}")))?;
        writeln!(out, "scheme written to {path}").map_err(CliError::io)?;
    }
    close_memo(&memo, &memo_file, out)?;
    Ok(())
}

/// `jp realize <graph.json> --as containment|spatial|equijoin`
pub fn realize(args: &[String], out: Out) -> Result<(), CliError> {
    let a = ParsedArgs::parse(args)?;
    let g = load_graph(a.pos(0, "graph file")?)?;
    let kind = a
        .opt("as")
        .ok_or_else(|| CliError::Usage("realize needs --as containment|spatial|equijoin".into()))?;
    match kind {
        "containment" => {
            let (r, s) = realize::set_containment_instance(&g);
            let rebuilt = jp_relalg::containment_graph(&r, &s).map_err(rt)?;
            writeln!(
                out,
                "Lemma 3.3 instance: {r}, {s}; join graph round-trip: {}",
                if rebuilt == g { "ok" } else { "MISMATCH" }
            )
            .map_err(CliError::io)?;
            if rebuilt != g {
                return Err(rt("round-trip failed (this falsifies Lemma 3.3!)"));
            }
        }
        "spatial" => {
            let (r, s) = realize::spatial_universal_instance(&g);
            let rebuilt = jp_relalg::spatial_graph(&r, &s).map_err(rt)?;
            writeln!(
                out,
                "spatial comb instance: {r}, {s}; join graph round-trip: {}",
                if rebuilt == g { "ok" } else { "MISMATCH" }
            )
            .map_err(CliError::io)?;
            if rebuilt != g {
                return Err(rt("round-trip failed"));
            }
        }
        "equijoin" => {
            match realize::equijoin_instance(&g) {
                Some((r, s)) => {
                    let rebuilt = jp_relalg::equijoin_graph(&r, &s).map_err(rt)?;
                    writeln!(
                        out,
                        "equijoin instance: {r}, {s}; join graph round-trip: {}",
                        if rebuilt == g { "ok" } else { "MISMATCH" }
                    )
                    .map_err(CliError::io)?;
                }
                None => return Err(rt(
                    "graph is not equijoin-realizable (some component is not complete bipartite)",
                )),
            }
        }
        other => return Err(CliError::Usage(format!("unknown realization `{other}`"))),
    }
    Ok(())
}

/// `jp replay <scheme.json> <graph.json>` — validate a stored scheme.
pub fn replay(args: &[String], out: Out) -> Result<(), CliError> {
    let a = ParsedArgs::parse(args)?;
    let scheme_path = a.pos(0, "scheme file")?;
    let text = std::fs::read_to_string(scheme_path)
        .map_err(|e| rt(format!("reading {scheme_path}: {e}")))?;
    let scheme: PebblingScheme =
        serde_json::from_str(&text).map_err(|e| rt(format!("parsing {scheme_path}: {e}")))?;
    let g = load_graph(a.pos(1, "graph file")?)?;
    match scheme.validate(&g) {
        Ok(()) => {
            let report = SchemeReport::new(&g, &scheme);
            writeln!(out, "scheme is valid for the graph").map_err(CliError::io)?;
            writeln!(out, "{report}").map_err(CliError::io)?;
            Ok(())
        }
        Err(e) => Err(rt(format!("scheme invalid: {e}"))),
    }
}

/// `jp fragment <graph.json> [--p P] [--q Q] [--slack S]` — the §5 plan.
pub fn fragment(args: &[String], out: Out) -> Result<(), CliError> {
    use jp_pebble::fragmentation::{
        balanced_capacity, component_pack, connected_lower_bound, local_search,
    };
    let a = ParsedArgs::parse(args)?;
    let g = load_graph(a.pos(0, "graph file")?)?;
    let p: u32 = a.opt_parse("p", 4)?;
    let q: u32 = a.opt_parse("q", 4)?;
    if p == 0 || q == 0 {
        // a 0×q or p×0 grid has no fragment to host any tuple; letting
        // it through panics in the packer instead of reporting misuse
        return Err(CliError::Usage(
            "--p and --q must be at least 1 (a fragment grid needs at least one cell)".into(),
        ));
    }
    let slack: usize = a.opt_parse("slack", 1)?;
    let cap_l = balanced_capacity(g.left_count() as usize, p) + slack;
    let cap_r = balanced_capacity(g.right_count() as usize, q) + slack;
    let m = local_search(&g, component_pack(&g, p, q, cap_l, cap_r), cap_l, cap_r, 4);
    m.validate(&g, cap_l, cap_r).map_err(rt)?;
    writeln!(
        out,
        "fragment plan: {p}×{q} grid, caps {cap_l}/{cap_r}: {} sub-joins scheduled (full grid {}, connected lower bound {})",
        m.cost(&g),
        p * q,
        connected_lower_bound(&g, cap_l, cap_r),
    )
    .map_err(CliError::io)?;
    Ok(())
}

/// `jp buffers <graph.json> [--b B]` — the B-buffer schedule (E21).
pub fn buffers(args: &[String], out: Out) -> Result<(), CliError> {
    use jp_pebble::buffers::{lower_bound, schedule_greedy};
    let a = ParsedArgs::parse(args)?;
    let g = load_graph(a.pos(0, "graph file")?)?;
    let b: usize = a.opt_parse("b", 2)?;
    let s = schedule_greedy(&g, b).map_err(rt)?;
    s.validate(&g, b).map_err(rt)?;
    writeln!(
        out,
        "B = {b}: {} loads (floor = every vertex once = {}; B = 2 is the paper's two-pebble game)",
        s.cost(),
        lower_bound(&g),
    )
    .map_err(CliError::io)?;
    Ok(())
}

/// `jp join --workload zipf|sets|rects|triangle|clique4|bowtie [opts]
/// [--algo lftj|generic|cascade|all] [--skewed true] [--pebble true]
/// [--memo true] [--memo-file F] [--threads N]`
///
/// The first three workloads are binary joins; the last three are
/// conjunctive queries run through the worst-case-optimal multiway
/// engines (`--algo` picks Leapfrog Triejoin, generic join, the binary
/// nested-loops cascade baseline, or all three; `--skewed true` swaps
/// the triangle instance for the star workload whose cascade
/// intermediate result is quadratic).
///
/// With `--pebble true` the workload's join graph is built and scheduled
/// through the pebbling solver — the memo options put the canonical-form
/// component cache in front of it, which is where repeated-shape
/// workloads (an equijoin is a union of `K_{k,l}` blocks, one per key)
/// collapse to hash lookups. Conjunctive queries pebble the disjoint
/// union of their pairwise shared-variable equijoin graphs.
pub fn join(args: &[String], out: Out) -> Result<(), CliError> {
    let a = ParsedArgs::parse(args)?;
    let wl = a.opt("workload").ok_or_else(|| {
        CliError::Usage("join needs --workload zipf|sets|rects|triangle|clique4|bowtie".into())
    })?;
    let n: usize = a.opt_parse("n", 1_000)?;
    let seed: u64 = a.opt_parse("seed", 42)?;
    let want_pebble = flag_true(&a, "pebble");
    let mut join_graph: Option<BipartiteGraph> = None;
    let timed = |name: &str, f: &dyn Fn() -> usize, out: &mut dyn Write| -> Result<(), CliError> {
        let t0 = Instant::now();
        let count = f();
        writeln!(
            out,
            "  {name:<16} {count:>8} pairs  {:>9.3} ms",
            t0.elapsed().as_secs_f64() * 1e3
        )
        .map_err(CliError::io)
    };
    match wl {
        "zipf" => {
            let keys: usize = a.opt_parse("keys", n / 10 + 1)?;
            let theta: f64 = a.opt_parse("theta", 0.8)?;
            let (r, s) = workload::zipf_equijoin(n, n, keys, theta, seed);
            writeln!(
                out,
                "equijoin workload: {r} ⋈ {s}, {keys} keys, θ = {theta}"
            )
            .map_err(CliError::io)?;
            timed(
                "hash_join",
                &|| algorithms::equi::hash_join(&r, &s).len(),
                out,
            )?;
            timed(
                "sort_merge",
                &|| algorithms::equi::sort_merge(&r, &s).len(),
                out,
            )?;
            timed(
                "index_nl",
                &|| algorithms::equi::index_nested_loops(&r, &s).len(),
                out,
            )?;
            if want_pebble {
                join_graph = Some(jp_relalg::equijoin_graph(&r, &s).map_err(rt)?);
            }
        }
        "sets" => {
            let universe: u32 = a.opt_parse("universe", 2_000)?;
            let planted: f64 = a.opt_parse("planted", 0.4)?;
            let (r, s) = workload::set_workload(n, n, universe, 3..=8, 8..=20, planted, seed);
            writeln!(out, "containment workload: {r} ⋈ {s}, universe {universe}")
                .map_err(CliError::io)?;
            timed(
                "inverted_index",
                &|| algorithms::containment::inverted_index(&r, &s).len(),
                out,
            )?;
            timed(
                "signature",
                &|| algorithms::containment::signature(&r, &s).len(),
                out,
            )?;
            timed(
                "partitioned",
                &|| algorithms::containment::partitioned(&r, &s, 64).len(),
                out,
            )?;
            if want_pebble {
                join_graph = Some(jp_relalg::containment_graph(&r, &s).map_err(rt)?);
            }
        }
        "rects" => {
            let extent: i64 = a.opt_parse("extent", 20_000)?;
            let side: i64 = a.opt_parse("side", 80)?;
            let r = workload::uniform_rects(n, extent, side, seed);
            let s = workload::uniform_rects(n, extent, side, seed + 1);
            writeln!(
                out,
                "spatial workload: {r} ⋈ {s}, extent {extent}, max side {side}"
            )
            .map_err(CliError::io)?;
            timed("sweep", &|| algorithms::spatial::sweep(&r, &s).len(), out)?;
            timed("pbsm", &|| algorithms::spatial::pbsm(&r, &s).len(), out)?;
            timed("rtree", &|| algorithms::spatial::rtree(&r, &s).len(), out)?;
            timed(
                "rtree_inl",
                &|| algorithms::spatial::index_nested_loops(&r, &s).len(),
                out,
            )?;
            if want_pebble {
                join_graph = Some(jp_relalg::spatial_graph(&r, &s).map_err(rt)?);
            }
        }
        "triangle" | "clique4" | "bowtie" => {
            let deg: usize = a.opt_parse("deg", 4)?;
            let threads: usize = a.opt_parse("threads", 1)?;
            if threads == 0 {
                return Err(CliError::Usage("--threads must be at least 1".into()));
            }
            let skewed = flag_true(&a, "skewed");
            if skewed && wl != "triangle" {
                return Err(CliError::Usage(
                    "--skewed only applies to the triangle workload".into(),
                ));
            }
            let (q, rels) = match wl {
                "triangle" if skewed => workload::triangle_skewed(n, seed),
                "triangle" => workload::triangle_random(n, deg, seed),
                "clique4" => workload::clique4_random(n, deg, seed),
                _ => workload::bowtie_random(n, deg, seed),
            };
            let sizes: Vec<String> = rels
                .iter()
                .map(|r| format!("|{}| = {}", r.name(), r.len()))
                .collect();
            writeln!(
                out,
                "multiway workload `{}`{}: {}",
                q.name(),
                if skewed { " (skewed)" } else { "" },
                sizes.join(", ")
            )
            .map_err(CliError::io)?;
            let algo_opt = a.opt("algo").unwrap_or("all");
            let algos: Vec<jp_relalg::MultiwayAlgo> = if algo_opt == "all" {
                vec![
                    jp_relalg::MultiwayAlgo::Lftj,
                    jp_relalg::MultiwayAlgo::Generic,
                    jp_relalg::MultiwayAlgo::Cascade,
                ]
            } else {
                vec![algo_opt.parse().map_err(rt)?]
            };
            for algo in algos {
                let t0 = Instant::now();
                let res = jp_relalg::multiway_solve(&q, &rels, algo, threads).map_err(rt)?;
                if res.rows.len() as f64 > res.agm_bound {
                    return Err(rt(format!(
                        "{} emitted {} rows above the AGM bound {:.1}",
                        algo.name(),
                        res.rows.len(),
                        res.agm_bound
                    )));
                }
                writeln!(
                    out,
                    "  {:<8} {:>8} rows  {:>9.3} ms  seeks {:>9}  intermediate {:>9}  \
                     AGM bound {:.1}",
                    algo.name(),
                    res.rows.len(),
                    t0.elapsed().as_secs_f64() * 1e3,
                    res.stats.seeks,
                    res.stats.intermediate,
                    res.agm_bound
                )
                .map_err(CliError::io)?;
            }
            if want_pebble {
                join_graph = Some(jp_relalg::query_join_graph(&q, &rels).map_err(rt)?);
            }
        }
        other => return Err(CliError::Usage(format!("unknown workload `{other}`"))),
    }
    if let Some(g) = join_graph {
        let threads: usize = a.opt_parse("threads", 1)?;
        if threads == 0 {
            return Err(CliError::Usage("--threads must be at least 1".into()));
        }
        let (memo, memo_file) = open_memo(&a, &mut *out)?;
        let t0 = Instant::now();
        let scheme = match &memo {
            Some(m) => jp_pebble::memo::solve_with_memo(&g, m, threads).map_err(rt)?,
            None => jp_pebble::portfolio::portfolio_scheme(&g, threads).map_err(rt)?,
        };
        let dt = t0.elapsed();
        scheme.validate(&g).map_err(rt)?;
        writeln!(
            out,
            "join graph: m = {}, β₀ = {}; pebbling π = {} in {:.3} ms",
            g.edge_count(),
            betti_number(&g),
            scheme.effective_cost(&g),
            dt.as_secs_f64() * 1e3
        )
        .map_err(CliError::io)?;
        close_memo(&memo, &memo_file, out)?;
    }
    Ok(())
}

/// Tracing ids for `jp explain` runs. The solve is stamped like a serve
/// request (same id scheme as the serve client's mint: process id high,
/// process-wide counter low), so the tap capture can be filtered down to
/// exactly this run's events even when other threads in the process are
/// emitting concurrently.
fn mint_explain_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    (u64::from(std::process::id()) << 32) | (n & 0xFFFF_FFFF)
}

/// Renders a variable list as paper-style names: `x0, x1, x2`.
fn var_list(vars: &[u32]) -> String {
    let names: Vec<String> = vars.iter().map(|v| format!("x{v}")).collect();
    names.join(", ")
}

/// One atom of the `jp explain --json` document.
#[derive(serde::Serialize)]
struct ExplainAtomDoc {
    relation: String,
    vars: Vec<u32>,
    weight: f64,
    rows: usize,
    key_order: Vec<u32>,
}

/// The plan half of the `jp explain --json` document.
#[derive(serde::Serialize)]
struct ExplainPlanDoc {
    variable_order: Vec<u32>,
    atoms: Vec<ExplainAtomDoc>,
    levels: Vec<Vec<usize>>,
    agm_bound: f64,
}

/// The observed-run half of the `jp explain --json` document.
#[derive(serde::Serialize)]
struct ExplainObservedDoc {
    request: u64,
    rows: usize,
    estimated_rows: f64,
    seeks: u64,
    emits: u64,
    intermediate: u64,
    counters: std::collections::BTreeMap<String, u64>,
    counters_match: bool,
    millis: f64,
}

/// The `jp explain --json` / `--out` document.
#[derive(serde::Serialize)]
struct ExplainDoc {
    query: String,
    skewed: bool,
    n: usize,
    deg: usize,
    seed: u64,
    algo: String,
    threads: usize,
    plan: ExplainPlanDoc,
    observed: ExplainObservedDoc,
}

/// `jp explain <triangle|clique4|bowtie> [--n N] [--deg D] [--seed S]
/// [--algo lftj|generic|cascade] [--skewed true] [--threads N]
/// [--json true] [--out F]` — render the plan the worst-case-optimal
/// engines run (variable ordering, per-atom trie key orders, fractional
/// cover weights, AGM bound) annotated with *observed* counters: the
/// same `(q, rels)` instance is solved under a jp-obs tap stamped with
/// a minted tracing id, and the plan's estimated output (the AGM bound)
/// is reported next to the actual rows, seeks and intermediates. The
/// command fails if the run's `wcoj.seek`/`wcoj.emit`/
/// `wcoj.intermediate` counters disagree with the solver's returned
/// stats — the emitted telemetry must be the truth.
pub fn explain(args: &[String], out: Out) -> Result<(), CliError> {
    let a = ParsedArgs::parse(args)?;
    let wl = a.pos(0, "workload (triangle | clique4 | bowtie)")?;
    let n: usize = a.opt_parse("n", 1_000)?;
    let deg: usize = a.opt_parse("deg", 4)?;
    let seed: u64 = a.opt_parse("seed", 42)?;
    let threads: usize = a.opt_parse("threads", 1)?;
    if threads == 0 {
        return Err(CliError::Usage("--threads must be at least 1".into()));
    }
    let skewed = flag_true(&a, "skewed");
    if skewed && wl != "triangle" {
        return Err(CliError::Usage(
            "--skewed only applies to the triangle workload".into(),
        ));
    }
    let (q, rels) = match wl {
        "triangle" if skewed => workload::triangle_skewed(n, seed),
        "triangle" => workload::triangle_random(n, deg, seed),
        "clique4" => workload::clique4_random(n, deg, seed),
        "bowtie" => workload::bowtie_random(n, deg, seed),
        other => {
            return Err(CliError::Usage(format!(
                "unknown workload `{other}` (triangle | clique4 | bowtie)"
            )))
        }
    };
    let algo: jp_relalg::MultiwayAlgo = a.opt("algo").unwrap_or("lftj").parse().map_err(rt)?;
    let plan = jp_relalg::explain_plan(&q, &rels).map_err(rt)?;

    // The observed half: run the exact same instance under a tap,
    // stamped with a minted tracing id, then keep only this run's
    // wcoj counters (the tap is process-wide; the stamp is not).
    let tap_sink = std::sync::Arc::new(jp_obs::MemorySink::new());
    let tap = jp_obs::set_tap(tap_sink.clone() as std::sync::Arc<dyn jp_obs::Sink>);
    let run_id = mint_explain_id();
    let t0 = Instant::now();
    let solve_result = {
        let _req = jp_obs::with_request(Some(run_id));
        jp_relalg::multiway_solve(&q, &rels, algo, threads)
    };
    let dt = t0.elapsed();
    drop(tap);
    let res = solve_result.map_err(rt)?;
    let mut observed: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for e in tap_sink.events() {
        if e.request == Some(run_id)
            && e.kind == jp_obs::EventKind::Counter
            && e.component == "wcoj"
        {
            *observed
                .entry(format!("{}.{}", e.component, e.name))
                .or_default() += e.value;
        }
    }
    let obs = |key: &str| observed.get(key).copied().unwrap_or(0);
    let counters_match = obs("wcoj.seek") == res.stats.seeks
        && obs("wcoj.emit") == res.stats.emits
        && obs("wcoj.intermediate") == res.stats.intermediate
        && res.stats.emits == res.rows.len() as u64;

    if flag_true(&a, "json") || a.opt("out").is_some() {
        let doc = ExplainDoc {
            query: q.name().to_string(),
            skewed,
            n,
            deg,
            seed,
            algo: algo.name().to_string(),
            threads,
            plan: ExplainPlanDoc {
                variable_order: plan.order.clone(),
                atoms: plan
                    .atoms
                    .iter()
                    .map(|at| ExplainAtomDoc {
                        relation: rels
                            .get(at.relation)
                            .map_or_else(|| "?".to_string(), |r| r.name().to_string()),
                        vars: at.vars.clone(),
                        weight: at.weight,
                        rows: at.rows,
                        key_order: at.key_order.clone(),
                    })
                    .collect(),
                levels: plan.levels.clone(),
                agm_bound: plan.agm_bound,
            },
            observed: ExplainObservedDoc {
                request: run_id,
                rows: res.rows.len(),
                estimated_rows: plan.agm_bound,
                seeks: res.stats.seeks,
                emits: res.stats.emits,
                intermediate: res.stats.intermediate,
                counters: observed.clone(),
                counters_match,
                millis: dt.as_secs_f64() * 1e3,
            },
        };
        let text = serde_json::to_string_pretty(&doc).map_err(rt)?;
        match a.opt("out") {
            Some(dest) => {
                std::fs::write(dest, text.as_bytes())
                    .map_err(|e| rt(format!("writing {dest}: {e}")))?;
                writeln!(out, "explain report written to {dest}").map_err(CliError::io)?;
            }
            None => writeln!(out, "{text}").map_err(CliError::io)?,
        }
    } else {
        writeln!(
            out,
            "query `{}`{}: {} atom(s) over {} relation(s), algo {}, threads {}",
            q.name(),
            if skewed { " (skewed)" } else { "" },
            plan.atoms.len(),
            rels.len(),
            algo.name(),
            threads
        )
        .map_err(CliError::io)?;
        let order_names: Vec<String> = plan.order.iter().map(|v| format!("x{v}")).collect();
        writeln!(
            out,
            "variable order: {}  (most-constrained first)",
            order_names.join(" → ")
        )
        .map_err(CliError::io)?;
        writeln!(
            out,
            "atoms (fractional edge cover → AGM bound {:.1} rows):",
            plan.agm_bound
        )
        .map_err(CliError::io)?;
        for at in &plan.atoms {
            let name = rels.get(at.relation).map_or("?", |r| r.name());
            writeln!(
                out,
                "  {name}({})  weight {:.2}  {:>8} rows  trie key order ({})",
                var_list(&at.vars),
                at.weight,
                at.rows,
                var_list(&at.key_order)
            )
            .map_err(CliError::io)?;
        }
        writeln!(out, "levels:").map_err(CliError::io)?;
        for (d, members) in plan.levels.iter().enumerate() {
            let names: Vec<&str> = members
                .iter()
                .filter_map(|&i| plan.atoms.get(i))
                .filter_map(|at| rels.get(at.relation).map(|r| r.name()))
                .collect();
            let var = plan.order.get(d).copied().unwrap_or(0);
            writeln!(out, "  bind x{var}: intersect {{ {} }}", names.join(", "))
                .map_err(CliError::io)?;
        }
        writeln!(
            out,
            "observed run (request id {run_id}, {:.3} ms):",
            dt.as_secs_f64() * 1e3
        )
        .map_err(CliError::io)?;
        writeln!(
            out,
            "  rows {} (estimated ≤ {:.1} from AGM; {:.1}% of bound)",
            res.rows.len(),
            plan.agm_bound,
            if plan.agm_bound > 0.0 {
                res.rows.len() as f64 * 100.0 / plan.agm_bound
            } else {
                0.0
            }
        )
        .map_err(CliError::io)?;
        writeln!(
            out,
            "  seeks {}  emits {}  intermediates {}",
            res.stats.seeks, res.stats.emits, res.stats.intermediate
        )
        .map_err(CliError::io)?;
        writeln!(
            out,
            "  obs counters wcoj.seek/emit/intermediate = {}/{}/{} — {}",
            obs("wcoj.seek"),
            obs("wcoj.emit"),
            obs("wcoj.intermediate"),
            if counters_match { "match" } else { "MISMATCH" }
        )
        .map_err(CliError::io)?;
    }
    if !counters_match {
        return Err(rt(format!(
            "observed counters diverge from the solver's stats: \
             wcoj.seek/emit/intermediate = {}/{}/{} but stats say {}/{}/{} ({} rows)",
            obs("wcoj.seek"),
            obs("wcoj.emit"),
            obs("wcoj.intermediate"),
            res.stats.seeks,
            res.stats.emits,
            res.stats.intermediate,
            res.rows.len()
        )));
    }
    Ok(())
}

/// `jp trace <summary|flame|diff|check|request> …` — the jp-lens
/// analysis toolbox over recorded `--trace` files.
pub fn trace(args: &[String], out: Out) -> Result<(), CliError> {
    let Some((sub, rest)) = args.split_first() else {
        return Err(CliError::Usage(
            "trace needs a subcommand: summary | flame | diff | check | request".into(),
        ));
    };
    match sub.as_str() {
        "summary" => trace_summary(rest, out),
        "flame" => trace_flame(rest, out),
        "diff" => trace_diff(rest, out),
        "check" => trace_check(rest, out),
        "request" => trace_request(rest, out),
        other => Err(CliError::Usage(format!(
            "unknown trace subcommand `{other}` (summary | flame | diff | check | request)"
        ))),
    }
}

/// Reads a trace into events, surfacing skip warnings. A file with
/// zero parseable events is an error, not an all-zero summary —
/// classified (empty vs. all-lines-skipped) and line-numbered so the
/// operator sees *why* nothing parsed.
fn load_events(path: &str, out: Out) -> Result<Vec<jp_obs::Event>, CliError> {
    let (events, report) =
        jp_trace::read_trace(path).map_err(|e| rt(format!("reading {path}: {e}")))?;
    if events.is_empty() {
        return Err(empty_trace_error(path, &report));
    }
    let warnings = report.render();
    if !warnings.is_empty() {
        write!(out, "{warnings}").map_err(CliError::io)?;
    }
    Ok(events)
}

/// Reads a trace and analyzes what parsed; see [`load_events`].
fn load_analysis(path: &str, out: Out) -> Result<jp_trace::Analysis, CliError> {
    let events = load_events(path, out)?;
    Ok(jp_trace::Analysis::from_events(&events))
}

/// The classified error for a trace no event could be read from.
fn empty_trace_error(path: &str, report: &jp_trace::ReadReport) -> CliError {
    if report.lines == 0 {
        return rt(format!("trace file {path} is empty (0 lines, 0 events)"));
    }
    let mut msg = format!(
        "trace file {path} contains no parseable events: {} line(s), \
         {} corrupt, {} unknown kind, {} unsupported version",
        report.lines,
        report.skipped_corrupt,
        report.skipped_unknown_kind,
        report.skipped_unsupported_version
    );
    for sample in &report.samples {
        msg.push_str(&format!("\n  line {}: {}", sample.line, sample.reason));
    }
    rt(msg)
}

/// `jp trace summary FILE`
fn trace_summary(args: &[String], out: Out) -> Result<(), CliError> {
    let a = ParsedArgs::parse(args)?;
    let path = a.pos(0, "trace file")?;
    let analysis = load_analysis(path, out)?;
    write!(out, "{}", analysis.render()).map_err(CliError::io)
}

/// `jp trace flame FILE [--out FILE] [--request ID]` — with
/// `--request` the folded stacks cover only the events stamped with
/// that serve tracing id: the flamegraph of one request.
fn trace_flame(args: &[String], out: Out) -> Result<(), CliError> {
    let a = ParsedArgs::parse(args)?;
    let path = a.pos(0, "trace file")?;
    let mut events = load_events(path, out)?;
    if let Some(raw) = a.opt("request") {
        let id: u64 = raw.parse().map_err(|_| {
            CliError::Usage(format!("--request needs a numeric tracing id, got {raw:?}"))
        })?;
        events.retain(|e| e.request == Some(id));
        if events.is_empty() {
            return Err(rt(format!(
                "no event in {path} is stamped with request id {id}"
            )));
        }
    }
    let analysis = jp_trace::Analysis::from_events(&events);
    let folded = jp_trace::flame::render(&analysis);
    match a.opt("out") {
        Some(dest) => {
            std::fs::write(dest, &folded).map_err(|e| rt(format!("writing {dest}: {e}")))?;
            writeln!(
                out,
                "{} stack(s) written to {dest} (inferno/flamegraph.pl folded format)",
                folded.lines().count()
            )
            .map_err(CliError::io)
        }
        None => write!(out, "{folded}").map_err(CliError::io),
    }
}

/// `jp trace diff A B`
fn trace_diff(args: &[String], out: Out) -> Result<(), CliError> {
    let a = ParsedArgs::parse(args)?;
    let path_a = a.pos(0, "first trace file")?;
    let path_b = a.pos(1, "second trace file")?;
    let run_a = load_analysis(path_a, out)?;
    let run_b = load_analysis(path_b, out)?;
    let report = jp_trace::diff::diff_analyses(&run_a, &run_b, &jp_trace::Tolerances::default());
    write!(out, "{}", report.render()).map_err(CliError::io)
}

/// `jp trace check FILE --baseline BENCH.json --family F --solver S
/// [--threads N]` — exits non-zero on any hard finding.
fn trace_check(args: &[String], out: Out) -> Result<(), CliError> {
    let a = ParsedArgs::parse(args)?;
    let path = a.pos(0, "trace file")?;
    let Some(baseline_path) = a.opt("baseline") else {
        return Err(CliError::Usage("trace check needs --baseline FILE".into()));
    };
    let Some(family) = a.opt("family") else {
        return Err(CliError::Usage("trace check needs --family NAME".into()));
    };
    let Some(solver) = a.opt("solver") else {
        return Err(CliError::Usage("trace check needs --solver NAME".into()));
    };
    let threads: u64 = a.opt_parse("threads", 1)?;
    let baseline_text = std::fs::read_to_string(baseline_path)
        .map_err(|e| rt(format!("reading {baseline_path}: {e}")))?;
    let cases = jp_trace::diff::load_baseline(&baseline_text).map_err(rt)?;
    let Some(case) = jp_trace::diff::find_case(&cases, family, solver, threads) else {
        return Err(rt(format!(
            "no baseline case ({family}, {solver}, threads={threads}) among {} cases in {baseline_path}",
            cases.len()
        )));
    };
    let analysis = load_analysis(path, out)?;
    let report = jp_trace::diff::check_against(case, &analysis, &jp_trace::Tolerances::default());
    writeln!(
        out,
        "checking {path} against ({family}, {solver}, threads={threads})"
    )
    .map_err(CliError::io)?;
    write!(out, "{}", report.render()).map_err(CliError::io)?;
    if report.has_hard() {
        return Err(rt(format!(
            "trace check failed: hard regression against {baseline_path}"
        )));
    }
    Ok(())
}

/// `jp trace request <id|all> FILE [--json true] [--min-complete PCT]`
/// — reconstruct the cross-thread critical path and blame breakdown of
/// one serve request (or every stamped request, slowest first). With
/// `all`, `--min-complete` turns completeness into a gate: the command
/// exits non-zero when fewer than PCT percent of the requests
/// reconstruct with zero orphaned spans and a `serve.request` root.
fn trace_request(args: &[String], out: Out) -> Result<(), CliError> {
    let a = ParsedArgs::parse(args)?;
    let which = a.pos(0, "request id (or `all`)")?;
    let path = a.pos(1, "trace file")?;
    let events = load_events(path, out)?;
    let json = flag_true(&a, "json");
    if which == "all" {
        let min: u64 = a.opt_parse("min-complete", 0)?;
        let summary = jp_trace::reconstruct_all(&events);
        if json {
            let text = serde_json::to_string_pretty(&summary).map_err(rt)?;
            writeln!(out, "{text}").map_err(CliError::io)?;
        } else {
            write!(out, "{}", summary.render()).map_err(CliError::io)?;
        }
        if summary.complete_pct < min {
            return Err(rt(format!(
                "request reconstruction gate failed: {}% of {} request(s) complete \
                 (< --min-complete {min}%)",
                summary.complete_pct, summary.requests
            )));
        }
        return Ok(());
    }
    let id: u64 = which.parse().map_err(|_| {
        CliError::Usage(format!(
            "request id must be a number or `all`, got {which:?}"
        ))
    })?;
    let Some(trace) = jp_trace::reconstruct(&events, id) else {
        return Err(rt(format!(
            "no event in {path} is stamped with request id {id}"
        )));
    };
    if json {
        let text = serde_json::to_string_pretty(&trace).map_err(rt)?;
        writeln!(out, "{text}").map_err(CliError::io)
    } else {
        write!(out, "{}", trace.render()).map_err(CliError::io)
    }
}

/// `jp pulse <top|export> FILE …` — the live-metrics toolbox over pulse
/// files recorded by the `--pulse` sampler.
pub fn pulse(args: &[String], out: Out) -> Result<(), CliError> {
    let Some((sub, rest)) = args.split_first() else {
        return Err(CliError::Usage(
            "pulse needs a subcommand: top | export".into(),
        ));
    };
    match sub.as_str() {
        "top" => pulse_top(rest, out),
        "export" => pulse_export(rest, out),
        other => Err(CliError::Usage(format!(
            "unknown pulse subcommand `{other}` (top | export)"
        ))),
    }
}

/// Reads a pulse file into snapshots; zero snapshots is an error.
fn load_pulse_snapshots(path: &str) -> Result<Vec<jp_trace::PulseSnapshot>, CliError> {
    let (events, report) =
        jp_trace::read_trace(path).map_err(|e| rt(format!("reading {path}: {e}")))?;
    let snaps = jp_trace::pulse_snapshots(&events);
    if snaps.is_empty() {
        return Err(rt(format!(
            "no pulse snapshots in {path} ({} line(s), {} event(s) parsed) — \
             was the run recorded with --pulse?",
            report.lines, report.events
        )));
    }
    Ok(snaps)
}

/// `jp pulse top FILE [--watch N] [--every-ms M]` — renders the latest
/// snapshot; with `--watch N` it re-reads the file N times at the given
/// cadence (default 500 ms), clearing the screen between frames, so a
/// terminal pointed at a live `--pulse` file becomes a `top`-style view.
fn pulse_top(args: &[String], out: Out) -> Result<(), CliError> {
    let a = ParsedArgs::parse(args)?;
    let path = a.pos(0, "pulse file")?;
    let watch: u64 = a.opt_parse("watch", 0)?;
    let every_ms: u64 = a.opt_parse("every-ms", 500)?;
    let frames = watch.max(1);
    for frame in 0..frames {
        let snaps = load_pulse_snapshots(path)?;
        let Some(last) = snaps.last() else {
            return Ok(()); // unreachable: load_pulse_snapshots errors on empty
        };
        if watch > 0 {
            // clear screen + home, the classic live-refresh sequence
            write!(out, "\x1b[2J\x1b[H").map_err(CliError::io)?;
        }
        write!(
            out,
            "{}",
            jp_pulse::top::render_top(last.ordinal, last.at_micros, &last.samples)
        )
        .map_err(CliError::io)?;
        out.flush().map_err(CliError::io)?;
        if frame + 1 < frames {
            std::thread::sleep(std::time::Duration::from_millis(every_ms));
        }
    }
    Ok(())
}

/// `jp pulse export FILE [--out F]` — Prometheus-style text exposition
/// of the latest snapshot, to stdout or a file.
fn pulse_export(args: &[String], out: Out) -> Result<(), CliError> {
    let a = ParsedArgs::parse(args)?;
    let path = a.pos(0, "pulse file")?;
    let snaps = load_pulse_snapshots(path)?;
    let Some(last) = snaps.last() else {
        return Ok(()); // unreachable: load_pulse_snapshots errors on empty
    };
    let text = jp_pulse::expo::render_exposition(&last.samples);
    match a.opt("out") {
        Some(dest) => {
            std::fs::write(dest, &text).map_err(|e| rt(format!("writing {dest}: {e}")))?;
            writeln!(
                out,
                "{} metric(s) from snapshot #{} exported to {dest}",
                last.samples.len(),
                last.ordinal
            )
            .map_err(CliError::io)
        }
        None => write!(out, "{text}").map_err(CliError::io),
    }
}

/// `jp serve [--addr A] [--threads N] [--memo-file F] [--max-pending N]
/// [--max-edges N] [--budget NODES] [--max-requests N] [--slow-us µS]
/// [--xray-file F] [--xray-ring N]` — run the long-lived planning
/// service until a shutdown request (or the `--max-requests` bound)
/// drains it. With `--xray-file` the tail sampler buffers each
/// request's spans and writes full detail only for requests slower
/// than `--slow-us` (or errored); everything else is reduced to its
/// root span.
pub fn serve(args: &[String], out: Out) -> Result<(), CliError> {
    let a = ParsedArgs::parse(args)?;
    let threads: usize = a.opt_parse("threads", 1)?;
    if threads == 0 {
        return Err(CliError::Usage("--threads must be at least 1".into()));
    }
    let cfg = jp_serve::ServeConfig {
        addr: a.opt("addr").unwrap_or("127.0.0.1:7411").to_string(),
        threads,
        max_pending: a.opt_parse("max-pending", 64)?,
        max_edges: a.opt_parse("max-edges", 4096)?,
        budget: a.opt_parse("budget", 50_000_000)?,
        memo_file: a.opt("memo-file").map(std::path::PathBuf::from),
        max_requests: a.opt_parse("max-requests", 0)?,
        slow_us: a.opt_parse("slow-us", 5_000)?,
        xray_file: a.opt("xray-file").map(std::path::PathBuf::from),
        xray_ring: a.opt_parse("xray-ring", 64)?,
    };
    let xray_file = cfg.xray_file.clone();
    let requested = cfg.addr.clone();
    let server =
        jp_serve::Server::bind(cfg).map_err(|e| rt(format!("binding {requested}: {e}")))?;
    let addr = server.local_addr().map_err(rt)?;
    writeln!(
        out,
        "serve: listening on {addr} ({} memo entries preloaded)",
        server.preloaded()
    )
    .map_err(CliError::io)?;
    out.flush().map_err(CliError::io)?;
    let report = server
        .run()
        .map_err(|e| rt(format!("serving on {addr}: {e}")))?;
    writeln!(
        out,
        "serve: {} connection(s), {} admitted, {} completed, {} rejected, {} error(s), cost sum {}",
        report.connections,
        report.accepted,
        report.completed,
        report.rejected,
        report.errors,
        report.cost_sum
    )
    .map_err(CliError::io)?;
    writeln!(
        out,
        "serve: drained {}; memo holds {} entries ({} recognized, {} hits, {} misses)",
        if report.drained {
            "cleanly"
        } else {
            "INCOMPLETE"
        },
        report.memo_entries,
        report.memo.recognized,
        report.memo.hits,
        report.memo.misses
    )
    .map_err(CliError::io)?;
    if let Some(path) = &xray_file {
        writeln!(
            out,
            "serve: xray {} exemplar(s), {} downsampled, {} dropped → {}",
            report.exemplars,
            report.downsampled,
            report.xray_dropped,
            path.display()
        )
        .map_err(CliError::io)?;
    }
    if report.errors > 0 {
        return Err(rt(format!("{} request(s) failed", report.errors)));
    }
    Ok(())
}

/// `jp loadgen [--addr A] [--clients N] [--requests N] [--theta T]
/// [--seed S] [--pool K] [--verify false] [--shutdown true] [--out F]`
/// — replay a Zipf-skewed query mix against a running server and
/// report client-observed latencies.
pub fn loadgen(args: &[String], out: Out) -> Result<(), CliError> {
    let a = ParsedArgs::parse(args)?;
    let clients: usize = a.opt_parse("clients", 4)?;
    let requests: usize = a.opt_parse("requests", 25)?;
    if clients == 0 || requests == 0 {
        return Err(CliError::Usage(
            "--clients and --requests must be at least 1".into(),
        ));
    }
    let cfg = jp_serve::LoadgenConfig {
        addr: a.opt("addr").unwrap_or("127.0.0.1:7411").to_string(),
        clients,
        requests,
        theta: a.opt_parse("theta", 0.8)?,
        seed: a.opt_parse("seed", 42)?,
        pool: a.opt_parse("pool", 8)?,
        // verification is on unless explicitly refused
        verify: !matches!(a.opt("verify"), Some("false") | Some("0") | Some("no")),
        shutdown: flag_true(&a, "shutdown"),
    };
    let report =
        jp_serve::run_loadgen(&cfg).map_err(|e| rt(format!("driving {}: {e}", cfg.addr)))?;
    writeln!(
        out,
        "loadgen: {} sent, {} ok, {} rejected, {} error(s), {} mismatch(es) \
         over {} client(s) in {:.1} ms",
        report.sent,
        report.ok,
        report.rejected,
        report.errors,
        report.mismatches,
        cfg.clients,
        report.wall_micros as f64 / 1000.0
    )
    .map_err(CliError::io)?;
    writeln!(
        out,
        "loadgen: latency p50 {} µs, p95 {} µs, p99 {} µs",
        report.p50_us, report.p95_us, report.p99_us
    )
    .map_err(CliError::io)?;
    if let Some(slowest) = report.slowest_p99.first() {
        writeln!(
            out,
            "loadgen: slowest request id {} ({} µs); {} id(s) at/above p99 \
             recorded for `jp trace request`",
            slowest.request,
            slowest.micros,
            report.slowest_p99.len()
        )
        .map_err(CliError::io)?;
    }
    if !report.mismatch_requests.is_empty() {
        writeln!(
            out,
            "loadgen: mismatched request id(s): {:?}",
            report.mismatch_requests
        )
        .map_err(CliError::io)?;
    }
    if let Some(s) = &report.server {
        writeln!(
            out,
            "server: {} memo entries, {} completed, {} rejected, {} error(s), \
             warm serve rate {:.1}%",
            s.entries,
            s.completed,
            s.rejected,
            s.errors,
            s.serve_rate() * 100.0
        )
        .map_err(CliError::io)?;
    }
    if let Some(path) = a.opt("out") {
        let json = serde_json::to_string_pretty(&report).map_err(rt)?;
        std::fs::write(path, json).map_err(|e| rt(format!("writing {path}: {e}")))?;
        writeln!(out, "loadgen report written to {path}").map_err(CliError::io)?;
    }
    if report.mismatches > 0 {
        return Err(rt(format!(
            "{} answer(s) diverged from the sequential solver",
            report.mismatches
        )));
    }
    Ok(())
}
