//! The degree-reduction "diamond" gadget (Figure 2 of the paper).
//!
//! The paper takes the gadget from Papadimitriou–Steiglitz's
//! HAM-PATH-4 → HAM-PATH-3 reduction: a graph with four *corner* nodes
//! (internal degree ≤ 2, so an external edge keeps total degree ≤ 3) and
//! some *central* nodes (degree ≤ 3) that replaces a degree-4 node, each
//! of the node's four edges attaching to a distinct corner.
//!
//! **Reproduction note** (documented in DESIGN.md): the paper states two
//! gadget properties — (a) a Hamiltonian path exists between any two
//! corners, and (b) every Hamiltonian path starts and ends at corners. An
//! exhaustive search over all candidate gadget families (bipartite
//! endpoint-parity constructions and hill-climbing over general graphs up
//! to 11 nodes) found property (b) unattainable together with (a) under
//! the degree bounds; the Theorem 4.3 proof, however, only *uses* (b)
//! through "perfect segments enter and leave through good edges", which
//! already holds because the only external weight-1 edges touch corners.
//! Our gadget therefore guarantees the two load-bearing properties:
//!
//! * **(a)** a Hamiltonian path between every pair of distinct corners
//!   (all 6 pairs), and
//! * **(c)** no two vertex-disjoint corner-to-corner paths cover all the
//!   gadget's nodes ("no two perfect segments can cover all the nodes in
//!   the gadget").
//!
//! It has 9 nodes (4 corners + 5 centrals), found by bounded search and
//! re-verified exhaustively in this module's tests, improving the paper's
//! node bound from `11n` to `9n` (hence `α = 9 ≤ 11`).

use jp_graph::hamilton;
use jp_graph::Graph;

/// Number of nodes in the gadget.
pub const SIZE: u32 = 9;

/// The corner nodes (degree 2 inside the gadget).
pub const CORNERS: [u32; 4] = [0, 1, 2, 3];

/// Gadget edges: corners 0–3, centrals 4–8.
pub const EDGES: [(u32, u32); 11] = [
    (0, 6),
    (0, 7),
    (1, 5),
    (1, 6),
    (2, 7),
    (2, 8),
    (3, 6),
    (3, 8),
    (4, 5),
    (4, 7),
    (4, 8),
];

/// The diamond gadget with cached corner-to-corner Hamiltonian paths.
#[derive(Debug, Clone)]
pub struct Diamond {
    graph: Graph,
    corner_paths: Vec<((u32, u32), Vec<u32>)>,
}

impl Default for Diamond {
    fn default() -> Self {
        Self::new()
    }
}

impl Diamond {
    /// Builds the gadget and precomputes a Hamiltonian path for each of
    /// the 6 corner pairs.
    pub fn new() -> Self {
        let graph = Graph::new(SIZE, EDGES.to_vec());
        let mut corner_paths = Vec::with_capacity(6);
        for (i, &c1) in CORNERS.iter().enumerate() {
            for &c2 in &CORNERS[i + 1..] {
                let p = hamilton::hamiltonian_path_between(&graph, c1, c2)
                    .expect("gadget property (a): all corner pairs are Ham-connected");
                corner_paths.push(((c1, c2), p));
            }
        }
        Diamond {
            graph,
            corner_paths,
        }
    }

    /// The gadget graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Whether `v` is a corner.
    pub fn is_corner(v: u32) -> bool {
        v < 4
    }

    /// A Hamiltonian path from corner `c1` to corner `c2` (`c1 ≠ c2`).
    pub fn corner_path(&self, c1: u32, c2: u32) -> Vec<u32> {
        assert!(Self::is_corner(c1) && Self::is_corner(c2) && c1 != c2);
        for ((a, b), p) in &self.corner_paths {
            if (*a, *b) == (c1, c2) {
                return p.clone();
            }
            if (*a, *b) == (c2, c1) {
                let mut r = p.clone();
                r.reverse();
                return r;
            }
        }
        unreachable!("all 6 pairs precomputed")
    }

    /// Property (c): true iff no two vertex-disjoint corner-to-corner
    /// paths cover all the nodes using all four corners as endpoints.
    /// Exhaustive over central subsets; used by tests and the harness.
    pub fn no_two_disjoint_corner_paths_cover(&self) -> bool {
        let n = SIZE as usize;
        let centrals: Vec<u32> = (4..SIZE).collect();
        let pairings = [
            ((0u32, 1u32), (2u32, 3u32)),
            ((0, 2), (1, 3)),
            ((0, 3), (1, 2)),
        ];
        for ((s1, t1), (s2, t2)) in pairings {
            for sub in 0..(1u32 << centrals.len()) {
                let mut side1 = vec![s1, t1];
                let mut side2 = vec![s2, t2];
                for (i, &c) in centrals.iter().enumerate() {
                    if sub & (1 << i) != 0 {
                        side1.push(c);
                    } else {
                        side2.push(c);
                    }
                }
                if self.has_ham_path_within(&side1, s1, t1)
                    && self.has_ham_path_within(&side2, s2, t2)
                {
                    return false;
                }
            }
        }
        let _ = n;
        true
    }

    fn has_ham_path_within(&self, nodes: &[u32], s: u32, t: u32) -> bool {
        let (sub, back) = self.graph.induced_subgraph(nodes);
        let new_of = |v: u32| back.iter().position(|&x| x == v).expect("s,t in nodes") as u32;
        if nodes.len() == 1 {
            return s == t;
        }
        hamilton::hamiltonian_path_between(&sub, new_of(s), new_of(t)).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_bounds_hold() {
        let d = Diamond::new();
        for &c in &CORNERS {
            assert!(d.graph().degree(c) <= 2, "corner {c} degree");
        }
        for v in 4..SIZE {
            assert!(d.graph().degree(v) <= 3, "central {v} degree");
        }
        assert!(d.graph().is_connected());
    }

    #[test]
    fn property_a_all_corner_pairs() {
        let d = Diamond::new();
        for &c1 in &CORNERS {
            for &c2 in &CORNERS {
                if c1 == c2 {
                    continue;
                }
                let p = d.corner_path(c1, c2);
                assert!(hamilton::is_hamiltonian_path(d.graph(), &p), "{c1}->{c2}");
                assert_eq!(p[0], c1);
                assert_eq!(*p.last().unwrap(), c2);
            }
        }
    }

    #[test]
    fn property_c_no_two_cover() {
        assert!(Diamond::new().no_two_disjoint_corner_paths_cover());
    }

    #[test]
    fn corners_only_touch_centrals() {
        let d = Diamond::new();
        for &c in &CORNERS {
            for &w in d.graph().neighbors(c) {
                assert!(!Diamond::is_corner(w), "corner {c} adjacent to corner {w}");
            }
        }
    }

    #[test]
    fn every_ham_path_endpoint_profile_is_documented() {
        // We *don't* have property (b); record the actual endpoint
        // profile so a change in the gadget is caught: at least one
        // endpoint of every Hamiltonian path is... enumerate and check
        // the weaker fact our reduction relies on implicitly: Hamiltonian
        // paths exist, and corner-to-corner ones exist for all pairs
        // (property (a), verified above). Here we verify the gadget is
        // traceable at all and count endpoint kinds for documentation.
        let d = Diamond::new();
        let mut corner_corner = 0usize;
        let mut other = 0usize;
        hamilton::for_each_hamiltonian_path(d.graph(), |p| {
            let (s, t) = (p[0], *p.last().unwrap());
            if Diamond::is_corner(s) && Diamond::is_corner(t) {
                corner_corner += 1;
            } else {
                other += 1;
            }
        });
        assert!(corner_corner >= 6, "at least one per corner pair");
        // `other` may be non-zero — that is the documented deviation.
        let _ = other;
    }
}
