//! Theorem 4.3: TSP-4(1,2) L-reduces to TSP-3(1,2).
//!
//! `f` replaces every node of (weight-1) degree 4 with a diamond gadget,
//! attaching each of its four edges to a distinct corner. `g` converts a
//! tour of `H = f(G)` back to a tour of `G` by keeping, per diamond, one
//! segment (a perfect one when available) and visiting `G`'s nodes in the
//! order the kept segments appear — the proof's "nice tour" conversion.
//!
//! The L-reduction constants: our gadget has 9 nodes, so
//! `OPT(H) ≤ 9·OPT(G)` (the paper's gadget gives 11); `β = 1`.

use crate::reductions::diamond::{Diamond, CORNERS, SIZE};
use crate::reductions::order_groups_by_segment;
use crate::tsp::Tsp12;
use jp_graph::Graph;

/// Where a `G` node landed in `H`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeImage {
    /// Kept as a single `H` node.
    Kept(u32),
    /// Replaced by a diamond whose nodes occupy `base..base + SIZE`.
    Diamond(u32),
}

/// The reduction output: the TSP-3(1,2) instance plus the maps needed for
/// the `f`-direction tour construction and the `g`-direction conversion.
#[derive(Debug, Clone)]
pub struct Tsp4To3 {
    /// The produced TSP-3(1,2) instance.
    h: Tsp12,
    /// Per `G` node: its image.
    image: Vec<NodeImage>,
    /// Per `H` node: the `G` node it belongs to.
    group: Vec<u32>,
    /// Per `G` node of degree 4: its incident edge ids in `G`, in order —
    /// edge `k` attaches to corner `k`.
    incident: Vec<Vec<usize>>,
    diamond: Diamond,
    g_nodes: u32,
}

/// Applies `f` to a TSP-4(1,2) instance.
///
/// # Panics
/// Panics if the weight-1 graph has a node of degree > 4.
pub fn reduce(g: &Tsp12) -> Tsp4To3 {
    let ones = g.ones();
    let n = ones.vertex_count();
    assert!(ones.max_degree() <= 4, "input must be TSP-4(1,2)");
    let diamond = Diamond::new();
    let mut image = Vec::with_capacity(n as usize);
    let mut group: Vec<u32> = Vec::new();
    let mut next = 0u32;
    for v in 0..n {
        if ones.degree(v) == 4 {
            image.push(NodeImage::Diamond(next));
            group.extend(std::iter::repeat_n(v, SIZE as usize));
            next += SIZE;
        } else {
            image.push(NodeImage::Kept(next));
            group.push(v);
            next += 1;
        }
    }
    // incident edge lists (edge ids into ones.edges())
    let mut incident: Vec<Vec<usize>> = vec![Vec::new(); n as usize];
    for (e, &(u, v)) in ones.edges().iter().enumerate() {
        incident[u as usize].push(e);
        incident[v as usize].push(e);
    }
    // H edges
    let mut h_edges: Vec<(u32, u32)> = Vec::new();
    for v in 0..n {
        if let NodeImage::Diamond(base) = image[v as usize] {
            h_edges.extend(
                crate::reductions::diamond::EDGES
                    .iter()
                    .map(|&(a, b)| (base + a, base + b)),
            );
        }
    }
    let attach = |v: u32, e: usize, image: &[NodeImage], incident: &[Vec<usize>]| -> u32 {
        match image[v as usize] {
            NodeImage::Kept(h) => h,
            NodeImage::Diamond(base) => {
                let k = incident[v as usize]
                    .iter()
                    .position(|&x| x == e)
                    .expect("edge incident to v") as u32;
                base + CORNERS[k as usize]
            }
        }
    };
    for (e, &(u, v)) in ones.edges().iter().enumerate() {
        h_edges.push((
            attach(u, e, &image, &incident),
            attach(v, e, &image, &incident),
        ));
    }
    let h = Tsp12::new(Graph::new(next, h_edges));
    Tsp4To3 {
        h,
        image,
        group,
        incident,
        diamond,
        g_nodes: n,
    }
}

impl Tsp4To3 {
    /// The TSP-3(1,2) instance `H`.
    pub fn h(&self) -> &Tsp12 {
        &self.h
    }

    /// `α` for this reduction: the gadget size (each `G` node maps to at
    /// most this many `H` nodes).
    pub fn alpha(&self) -> usize {
        SIZE as usize
    }

    fn attach(&self, v: u32, e: usize) -> u32 {
        match self.image[v as usize] {
            NodeImage::Kept(h) => h,
            NodeImage::Diamond(base) => {
                let k = self.incident[v as usize]
                    .iter()
                    .position(|&x| x == e)
                    .expect("incident");
                base + CORNERS[k]
            }
        }
    }

    /// The `f`-direction tour construction: converts a tour of `G` into a
    /// tour of `H` with the *same* jump count (each diamond is traversed
    /// by a corner-to-corner Hamiltonian path whose entry/exit corners
    /// align with the tour's good edges).
    pub fn forward_tour(&self, g_tour: &[u32], g: &Tsp12) -> Vec<u32> {
        let ones = g.ones();
        let mut out: Vec<u32> = Vec::with_capacity(self.group.len());
        for (p, &v) in g_tour.iter().enumerate() {
            match self.image[v as usize] {
                NodeImage::Kept(h) => out.push(h),
                NodeImage::Diamond(base) => {
                    // entry corner: aligned with a good previous step
                    let corner_for = |other: u32| -> Option<u32> {
                        if !ones.has_edge(v, other) {
                            return None;
                        }
                        let (a, b) = if v < other { (v, other) } else { (other, v) };
                        let e = ones.edges().binary_search(&(a, b)).expect("edge exists");
                        Some(self.attach(v, e) - base)
                    };
                    let c1 = if p > 0 {
                        corner_for(g_tour[p - 1])
                    } else {
                        None
                    };
                    let c2 = if p + 1 < g_tour.len() {
                        corner_for(g_tour[p + 1])
                    } else {
                        None
                    };
                    let (c1, c2) = match (c1, c2) {
                        (Some(a), Some(b)) => (a, b),
                        (Some(a), None) => (a, CORNERS.iter().copied().find(|&c| c != a).unwrap()),
                        (None, Some(b)) => (CORNERS.iter().copied().find(|&c| c != b).unwrap(), b),
                        (None, None) => (0, 1),
                    };
                    debug_assert_ne!(c1, c2, "distinct edges attach to distinct corners");
                    out.extend(self.diamond.corner_path(c1, c2).iter().map(|&x| base + x));
                }
            }
        }
        out
    }

    /// The `g`-direction conversion ("nice tour"): a tour of `H` becomes a
    /// tour of `G` by visiting `G` nodes in the order of their kept
    /// (perfect-preferred) segments.
    pub fn back_tour(&self, h_tour: &[u32]) -> Vec<u32> {
        order_groups_by_segment(h_tour, &self.group, self.g_nodes as usize, |a, b| {
            self.h.ones().has_edge(a, b)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::min_jump_tour;
    use jp_graph::generators;

    /// A TSP-4(1,2) instance with at least one degree-4 node, small enough
    /// for exact solving on both sides.
    fn sample_instance(seed: u64) -> Tsp12 {
        // 5 nodes, push edges until some node has degree 4
        let g = generators::random_bounded_degree(5, 4, 8, seed);
        Tsp12::new(g)
    }

    #[test]
    fn reduction_degree_bound() {
        for seed in 0..10 {
            let g = sample_instance(seed);
            let red = reduce(&g);
            assert!(
                red.h().ones().max_degree() <= 3,
                "seed {seed}: H must be TSP-3"
            );
        }
    }

    #[test]
    fn forward_tour_is_valid_and_preserves_jumps() {
        for seed in 0..10 {
            let g = sample_instance(seed);
            if !g.ones().is_connected() {
                continue;
            }
            let red = reduce(&g);
            let (g_tour, g_jumps) = min_jump_tour(g.ones());
            let h_tour = red.forward_tour(&g_tour, &g);
            assert!(red.h().is_valid_tour(&h_tour), "seed {seed}");
            assert_eq!(
                red.h().tour_jumps(&h_tour),
                g_jumps,
                "seed {seed}: jumps preserved"
            );
        }
    }

    #[test]
    fn alpha_bound_holds() {
        // OPT(H) ≤ α·OPT(G) with α = 9.
        for seed in 0..8 {
            let g = sample_instance(seed);
            if !g.ones().is_connected() || g.ones().vertex_count() == 0 {
                continue;
            }
            let red = reduce(&g);
            if red.h().n() > 20 {
                continue; // exact solver limit
            }
            let (_, gj) = min_jump_tour(g.ones());
            let (_, hj) = min_jump_tour(red.h().ones());
            let opt_g = g.n() - 1 + gj;
            let opt_h = red.h().n() - 1 + hj;
            assert!(
                opt_h <= red.alpha() * opt_g,
                "seed {seed}: {opt_h} > 9·{opt_g}"
            );
        }
    }

    #[test]
    fn back_tour_is_a_permutation_of_g_nodes() {
        for seed in 0..10 {
            let g = sample_instance(seed);
            let red = reduce(&g);
            let h_n = red.h().n();
            // any tour of H, e.g. identity order
            let h_tour: Vec<u32> = (0..h_n as u32).collect();
            let back = red.back_tour(&h_tour);
            let mut sorted = back.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..g.n() as u32).collect::<Vec<_>>(), "seed {seed}");
        }
    }

    #[test]
    fn beta_inequality_on_optimal_tours() {
        // β = 1: cost(g(s)) − OPT(G) ≤ cost(s) − OPT(H), tested with s the
        // optimal H tour (forcing g to return an optimal G tour) and with
        // the forward tour of the optimal G tour.
        for seed in 0..8 {
            let g = sample_instance(seed);
            if !g.ones().is_connected() {
                continue;
            }
            let red = reduce(&g);
            if red.h().n() > 20 {
                continue;
            }
            let (g_opt_tour, gj) = min_jump_tour(g.ones());
            let opt_g = g.n() - 1 + gj;
            let (h_opt_tour, hj) = min_jump_tour(red.h().ones());
            let opt_h = red.h().n() - 1 + hj;
            for s in [h_opt_tour, red.forward_tour(&g_opt_tour, &g)] {
                let cost_s = red.h().tour_cost(&s);
                let back = red.back_tour(&s);
                let cost_back = g.tour_cost(&back);
                assert!(
                    cost_back - opt_g <= cost_s - opt_h,
                    "seed {seed}: β=1 violated: {cost_back}−{opt_g} > {cost_s}−{opt_h}"
                );
            }
        }
    }

    #[test]
    fn no_degree_4_nodes_means_identity_like_reduction() {
        let g = Tsp12::new(generators::random_bounded_degree(6, 3, 7, 3));
        let red = reduce(&g);
        assert_eq!(red.h().n(), 6);
        assert_eq!(red.h().ones().edges(), g.ones().edges());
    }

    #[test]
    #[should_panic(expected = "TSP-4")]
    fn rejects_degree_5() {
        let star5 = jp_graph::Graph::new(6, vec![(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        reduce(&Tsp12::new(star5));
    }
}
