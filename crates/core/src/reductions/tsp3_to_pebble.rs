//! Theorem 4.4: TSP-3(1,2) L-reduces to `PEBBLE` — the MAX-SNP-
//! completeness of finding optimal pebblings.
//!
//! `f` maps a TSP-3(1,2) instance `G = (V, E)` to its *incidence graph*
//! `B = (X, Y, E′)` with `X = V`, `Y = E`, and `(x, e) ∈ E′` iff `x` is an
//! endpoint of `e`. The line graph `L(B)` is `G` with every vertex of
//! degree `i` blown up into a clique of `i` vertices — so tours of `G`
//! and pebblings of `B` translate back and forth:
//!
//! * forward: a tour of `G` becomes a pebbling of `B` that sweeps, at
//!   each visited vertex, the clique of its incident `B`-edges, chaining
//!   consecutive sweeps through the shared edge-vertex when the tour step
//!   is good;
//! * backward (`g`): a pebbling's deletion order is a tour of `L(B)`;
//!   contracting each vertex-clique to its `G` vertex (keeping the
//!   perfect-preferred segment, as in Theorem 4.3) yields a tour of `G`.

use crate::reductions::order_groups_by_segment;
use crate::scheme::PebblingScheme;
use crate::tsp::{scheme_to_tour, Tsp12};
use crate::PebbleError;
use jp_graph::{generators, BipartiteGraph};

/// The reduction output: the `PEBBLE` instance and conversion maps.
#[derive(Debug, Clone)]
pub struct Tsp3ToPebble {
    /// The incidence graph — the `PEBBLE` instance.
    b: BipartiteGraph,
    /// The source instance's weight-1 graph (kept for conversions).
    ones: jp_graph::Graph,
}

/// Applies `f` to a TSP-3(1,2) instance.
///
/// # Panics
/// Panics if the weight-1 graph has a node of degree > 3.
pub fn reduce(g: &Tsp12) -> Tsp3ToPebble {
    assert!(g.ones().max_degree() <= 3, "input must be TSP-3(1,2)");
    Tsp3ToPebble {
        b: generators::incidence_graph(g.ones()),
        ones: g.ones().clone(),
    }
}

impl Tsp3ToPebble {
    /// The produced `PEBBLE` instance `B`.
    pub fn b(&self) -> &BipartiteGraph {
        &self.b
    }

    /// `α` for this reduction (the paper's value: 3).
    pub fn alpha(&self) -> usize {
        3
    }

    /// Forward construction: a tour of `G` becomes a pebbling scheme of
    /// `B` whose jumps equal the tour's jumps.
    ///
    /// `B`'s edges are pairs `(v, e)`; at tour position `i` we sweep all
    /// of `v_i`'s incident pairs, placing the pair of the incoming good
    /// edge first and the outgoing good edge last, so consecutive sweeps
    /// chain through the shared `Y`-vertex.
    pub fn forward_scheme(&self, g_tour: &[u32]) -> Result<PebblingScheme, PebbleError> {
        let ones = &self.ones;
        // incident edge ids per vertex
        let mut incident: Vec<Vec<usize>> = vec![Vec::new(); ones.vertex_count() as usize];
        for (e, &(u, v)) in ones.edges().iter().enumerate() {
            incident[u as usize].push(e);
            incident[v as usize].push(e);
        }
        let edge_id = |a: u32, b: u32| -> Option<usize> {
            let key = if a < b { (a, b) } else { (b, a) };
            ones.edges().binary_search(&key).ok()
        };
        let mut order: Vec<usize> = Vec::with_capacity(self.b.edge_count());
        for (i, &v) in g_tour.iter().enumerate() {
            let f_prev = if i > 0 {
                edge_id(g_tour[i - 1], v)
            } else {
                None
            };
            let f_next = if i + 1 < g_tour.len() {
                edge_id(v, g_tour[i + 1])
            } else {
                None
            };
            let mut sweep: Vec<usize> = Vec::with_capacity(incident[v as usize].len());
            if let Some(e) = f_prev {
                sweep.push(e);
            }
            for &e in &incident[v as usize] {
                if Some(e) != f_prev && Some(e) != f_next {
                    sweep.push(e);
                }
            }
            if let Some(e) = f_next {
                if f_prev != f_next {
                    sweep.push(e);
                }
            }
            // B edge (v, e) has index via b.edge_index(v, e as u32)
            for e in sweep {
                let id = self
                    .b
                    .edge_index(v, e as u32)
                    .expect("incidence edge exists");
                order.push(id);
            }
        }
        PebblingScheme::from_edge_sequence(&self.b, &order)
    }

    /// The `g` map: converts any valid pebbling scheme of `B` into a tour
    /// of `G` by contracting vertex-cliques of `L(B)` (keeping
    /// perfect-preferred segments).
    pub fn back_tour(&self, scheme: &PebblingScheme) -> Vec<u32> {
        let lb_tour = scheme_to_tour(&self.b, scheme);
        // L(B) vertex = B edge (v, e); group = v (the G vertex).
        let group_of: Vec<u32> = self.b.edges().iter().map(|&(v, _)| v).collect();
        let lb = jp_graph::line_graph(&self.b);
        let mut tour = order_groups_by_segment(
            &lb_tour,
            &group_of,
            self.ones.vertex_count() as usize,
            |a, b| lb.has_edge(a, b),
        );
        // isolated G vertices have no incidence edges and never appear in
        // the pebbling; a tour of G must still visit them (each costs a
        // weight-2 step, mirroring the pebbling's inability to help them)
        let mut present = vec![false; self.ones.vertex_count() as usize];
        for &v in &tour {
            present[v as usize] = true;
        }
        tour.extend((0..self.ones.vertex_count()).filter(|&v| !present[v as usize]));
        tour
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{min_jump_tour, optimal_effective_cost, optimal_scheme};
    use jp_graph::Graph;

    fn connected_tsp3(seed: u64, n: u32, m: usize) -> Option<Tsp12> {
        let g = generators::random_bounded_degree(n, 3, m, seed);
        g.is_connected().then(|| Tsp12::new(g))
    }

    #[test]
    fn incidence_graph_shape() {
        let g = Tsp12::new(Graph::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]));
        let red = reduce(&g);
        assert_eq!(red.b().left_count(), 4);
        assert_eq!(red.b().right_count(), 4);
        assert_eq!(red.b().edge_count(), 8);
    }

    #[test]
    fn forward_scheme_is_valid_with_matching_jumps() {
        for seed in 0..20 {
            let Some(g) = connected_tsp3(seed, 6, 8) else {
                continue;
            };
            let (tour, jumps) = min_jump_tour(g.ones());
            let red = reduce(&g);
            let s = red.forward_scheme(&tour).unwrap();
            s.validate(red.b()).unwrap();
            assert_eq!(s.jumps(red.b()), jumps, "seed {seed}");
            // effective cost = 2|E| + jumps for connected G
            assert_eq!(s.effective_cost(red.b()), 2 * g.ones().edge_count() + jumps);
        }
    }

    #[test]
    fn alpha_bound_holds_with_documented_slack() {
        // The paper's α = 3 (π(B) ≤ 3·OPT(G)); for jump-free traceable
        // instances at maximum density the bound carries +2 slack (see
        // DESIGN.md). We assert the measured form.
        for seed in 0..20 {
            let Some(g) = connected_tsp3(seed, 6, 7) else {
                continue;
            };
            let red = reduce(&g);
            if red.b().edge_count() > 18 {
                continue;
            }
            let opt_b = optimal_effective_cost(red.b()).unwrap();
            let (_, gj) = min_jump_tour(g.ones());
            let opt_g = g.n() - 1 + gj;
            assert!(
                opt_b <= 3 * opt_g + 2,
                "seed {seed}: {opt_b} > 3·{opt_g} + 2"
            );
        }
    }

    #[test]
    fn back_tour_is_permutation() {
        for seed in 0..10 {
            let Some(g) = connected_tsp3(seed, 5, 6) else {
                continue;
            };
            let red = reduce(&g);
            let (tour, _) = min_jump_tour(g.ones());
            let s = red.forward_scheme(&tour).unwrap();
            let back = red.back_tour(&s);
            let mut sorted = back.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..g.n() as u32).collect::<Vec<_>>(), "seed {seed}");
        }
    }

    #[test]
    fn beta_inequality_on_optimal_schemes() {
        // β = 1: cost(g(s)) − OPT(G) ≤ cost_tsp(s) − OPT_tsp(B), with the
        // tour-side costs of Proposition 2.2 (π − 1).
        for seed in 0..15 {
            let Some(g) = connected_tsp3(seed, 5, 6) else {
                continue;
            };
            let red = reduce(&g);
            if red.b().edge_count() > 14 {
                continue;
            }
            let opt_b = optimal_effective_cost(red.b()).unwrap();
            let (g_opt_tour, gj) = min_jump_tour(g.ones());
            let opt_g = g.n() - 1 + gj;
            let schemes = [
                optimal_scheme(red.b()).unwrap(),
                red.forward_scheme(&g_opt_tour).unwrap(),
            ];
            for s in schemes {
                let cost_s = s.effective_cost(red.b());
                let back = red.back_tour(&s);
                let cost_back = g.tour_cost(&back);
                assert!(
                    cost_back.saturating_sub(opt_g) <= cost_s - opt_b,
                    "seed {seed}: β=1 violated ({cost_back}−{opt_g} > {cost_s}−{opt_b})"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "TSP-3")]
    fn rejects_degree_4() {
        let star = Graph::new(5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]);
        reduce(&Tsp12::new(star));
    }
}
