//! The L-reductions of §4.
//!
//! * [`diamond`] — the degree-reduction gadget of Figure 2;
//! * [`tsp4_to_tsp3`] — Theorem 4.3: TSP-4(1,2) L-reduces to TSP-3(1,2),
//!   by replacing degree-4 nodes with diamonds;
//! * [`tsp3_to_pebble`] — Theorem 4.4: TSP-3(1,2) L-reduces to `PEBBLE`,
//!   via incidence graphs.
//!
//! Definition 4.2 (L-reduction `(f, g)` from `A` to `B`): polynomial
//! `f` maps instances with `OPT(f(x)) ≤ α·OPT(x)`, polynomial `g` maps
//! feasible solutions back with
//! `OPT(x) − Cost(g(s)) ≤ β·(OPT(f(x)) − Cost(s))`
//! (for minimization, `Cost(g(s)) − OPT(x) ≤ β·(Cost(s) − OPT(f(x)))`).
//! The experiment harness (E12/E13) verifies both inequalities on
//! exhaustively solved instances.

pub mod diamond;
pub mod tsp3_to_pebble;
pub mod tsp4_to_tsp3;

pub use diamond::Diamond;

/// Segment-based group ordering — the shared "nice tour" machinery of
/// Theorems 4.3 and 4.4's `g` maps.
///
/// `tour` visits nodes that each belong to a group (`group_of[node]`); a
/// *segment* is a maximal run of consecutive tour positions within one
/// group. For each group the proof keeps one segment — a *perfect* one
/// (all internal steps good, entered and left via good steps) if
/// available, else the longest — and bypasses the rest; the reduced tour
/// visits groups in the order their kept segments appear.
///
/// Returns the groups (each exactly once) in that order.
pub fn order_groups_by_segment(
    tour: &[u32],
    group_of: &[u32],
    n_groups: usize,
    good: impl Fn(u32, u32) -> bool,
) -> Vec<u32> {
    #[derive(Clone, Copy)]
    struct Seg {
        start: usize,
        len: usize,
        perfect: bool,
    }
    let mut best: Vec<Option<Seg>> = vec![None; n_groups];
    let mut i = 0;
    while i < tour.len() {
        let grp = group_of[tour[i] as usize] as usize;
        let mut j = i;
        let mut internal_good = true;
        while j + 1 < tour.len() && group_of[tour[j + 1] as usize] as usize == grp {
            if !good(tour[j], tour[j + 1]) {
                internal_good = false;
            }
            j += 1;
        }
        let entered_good = i == 0 || good(tour[i - 1], tour[i]);
        let left_good = j + 1 >= tour.len() || good(tour[j], tour[j + 1]);
        let seg = Seg {
            start: i,
            len: j - i + 1,
            perfect: internal_good && entered_good && left_good,
        };
        let better = match best[grp] {
            None => true,
            Some(old) => (seg.perfect, seg.len) > (old.perfect, old.len),
        };
        if better {
            best[grp] = Some(seg);
        }
        i = j + 1;
    }
    let mut order: Vec<(usize, u32)> = best
        .iter()
        .enumerate()
        .filter_map(|(grp, seg)| seg.map(|s| (s.start, grp as u32)))
        .collect();
    order.sort_unstable();
    order.into_iter().map(|(_, grp)| grp).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_segment_per_group_orders_naturally() {
        // nodes 0..6, groups [0,0,1,1,1,2,2] visited in order
        let tour: Vec<u32> = (0..7).collect();
        let group_of = vec![0, 0, 1, 1, 1, 2, 2];
        let order = order_groups_by_segment(&tour, &group_of, 3, |_, _| true);
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn prefers_perfect_segments() {
        // group 1 appears twice: positions 1 (singleton, entered/left via
        // bad steps) and 4-5 (perfect). Good steps: only 3-4, 4-5, 5-6.
        let tour = vec![0u32, 10, 1, 2, 11, 12, 3];
        let group_of = {
            let mut g = vec![0u32; 13];
            g[10] = 1;
            g[11] = 1;
            g[12] = 1;
            // others group 0: give each its own group to keep order visible
            g[0] = 0;
            g[1] = 2;
            g[2] = 3;
            g[3] = 4;
            g
        };
        let good = |a: u32, b: u32| {
            let pair = (a.min(b), a.max(b));
            [(2, 11), (11, 12), (3, 12)].contains(&pair)
        };
        let order = order_groups_by_segment(&tour, &group_of, 5, good);
        // group 1's kept segment is the perfect one at positions 4-5, so
        // group 1 comes after groups 2 and 3 (positions 2, 3).
        assert_eq!(order, vec![0, 2, 3, 1, 4]);
    }

    #[test]
    fn longest_segment_wins_without_perfection() {
        // group 1 = {4, 5, 6}; segments: [5] at position 0, [6, 4] at 2-3.
        // With no good steps, the longer segment is kept, so group 1's key
        // (position 2) follows group 0's (position 1).
        let tour = vec![5u32, 0, 6, 4];
        let mut group_of = vec![0u32; 7];
        group_of[5] = 1;
        group_of[6] = 1;
        group_of[4] = 1;
        let order = order_groups_by_segment(&tour, &group_of, 2, |_, _| false);
        assert_eq!(order, vec![0, 1]);
    }
}
