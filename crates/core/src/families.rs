//! Closed-form optima and explicit optimal schemes for the structured
//! graph families of §2–§3 — exact answers at any scale, where the
//! general solver is exponential.
//!
//! | family | optimal `π` | source |
//! |---|---|---|
//! | `K_{k,l}` | `m = k·l` | Lemma 3.2 (boustrophedon) |
//! | matching | `m` (`π̂ = 2m`) | Lemma 2.4 |
//! | path / even cycle | `m` | `L(G)` is a path/cycle (Prop 2.1) |
//! | spider `G_n` | `m + ⌈n/2⌉ − 1` | Theorem 3.3 (`= 1.25m − 1` for even `n`) |

use crate::scheme::PebblingScheme;
use jp_graph::{generators, BipartiteGraph};

/// `π(K_{k,l}) = k·l` (Lemma 3.2).
pub fn complete_bipartite_optimal_cost(k: u64, l: u64) -> u64 {
    k * l
}

/// `π̂(matching with m edges) = 2m`, `π = m` (Lemma 2.4).
pub fn matching_optimal_total_cost(m: u64) -> u64 {
    2 * m
}

/// `π(G_n)` for the Figure 1 spider family: `2n + ⌈n/2⌉ − 1`.
///
/// For even `n` this is exactly the paper's `1.25m − 1` with `m = 2n`
/// (Theorem 3.3); for odd `n` the same `B⁺/B⁻` argument gives the integer
/// round-up. `n = 1` and `n = 2` are paths (`π = m`).
pub fn spider_optimal_cost(n: u64) -> u64 {
    assert!(n >= 1);
    if n <= 2 {
        return 2 * n; // a path: perfect pebbling
    }
    2 * n + n.div_ceil(2) - 1
}

/// The jump count of the optimal spider scheme: `⌈n/2⌉ − 1` for `n ≥ 3`.
pub fn spider_optimal_jumps(n: u64) -> u64 {
    spider_optimal_cost(n) - 2 * n
}

/// An explicit optimal scheme for `G_n`, pairing consecutive legs: each
/// jump-free run covers two legs as
/// `(w_i, v_i), (v_i, c), (c, v_{i+1}), (v_{i+1}, w_{i+1})`; runs are
/// separated by one jump. Cost matches [`spider_optimal_cost`].
pub fn spider_optimal_scheme(n: u32) -> (BipartiteGraph, PebblingScheme) {
    let g = generators::spider(n);
    // Edge ids in generators::spider: edges are sorted by (left, right):
    // left 0 (=c) has edges to all rights 0..n first — ids 0..n are
    // (c, v_i); then (w_i = left i+1, v_i) gets id n + i.
    let spoke = |i: u32| i as usize; // (c, v_i)
    let foot = |i: u32| (n + i) as usize; // (v_i, w_i)
    let mut order: Vec<usize> = Vec::with_capacity(2 * n as usize);
    let mut i = 0;
    while i < n {
        if i + 1 < n {
            order.extend([foot(i), spoke(i), spoke(i + 1), foot(i + 1)]);
            i += 2;
        } else {
            order.extend([spoke(i), foot(i)]);
            i += 1;
        }
    }
    let s = PebblingScheme::from_edge_sequence(&g, &order).expect("order covers all edges");
    (g, s)
}

/// The `B⁺/B⁻` lower-bound certificate of Theorem 3.3, checked against a
/// concrete scheme: every scheme for `G_n` has
/// `π ≥ 2n + ⌈(n − 2)/2⌉` (each pendant line-graph vertex must be entered
/// or left via a jump, except possibly the tour's two ends). Returns true
/// when `scheme`'s cost respects the bound — i.e. the certificate can
/// never be violated; failing this test would falsify the paper.
pub fn spider_bound_certificate(n: u32, scheme: &PebblingScheme, g: &BipartiteGraph) -> bool {
    let m = 2 * n as usize;
    let bound = m + (n as usize).saturating_sub(2).div_ceil(2);
    scheme.validate(g).is_ok() && scheme.effective_cost(g) >= bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::equijoin::pebble_equijoin;
    use crate::exact::{optimal_effective_cost, optimal_total_cost};

    #[test]
    fn closed_forms_match_exact_solver() {
        for (k, l) in [(1u32, 1u32), (2, 3), (3, 3), (4, 4)] {
            let g = generators::complete_bipartite(k, l);
            assert_eq!(
                optimal_effective_cost(&g).unwrap() as u64,
                complete_bipartite_optimal_cost(k as u64, l as u64)
            );
        }
        for m in 1..6u32 {
            let g = generators::matching(m);
            assert_eq!(
                optimal_total_cost(&g).unwrap() as u64,
                matching_optimal_total_cost(m as u64)
            );
        }
        for n in 1..8u32 {
            let g = generators::spider(n);
            assert_eq!(
                optimal_effective_cost(&g).unwrap() as u64,
                spider_optimal_cost(n as u64),
                "G_{n}"
            );
        }
    }

    #[test]
    fn theorem_3_3_even_n_is_125m_minus_1() {
        for n in [4u64, 6, 8, 100, 10_000] {
            let m = 2 * n;
            assert_eq!(spider_optimal_cost(n), 5 * m / 4 - 1, "n = {n}");
        }
    }

    #[test]
    fn spider_scheme_achieves_closed_form_at_scale() {
        for n in [3u32, 4, 5, 10, 101, 500] {
            let (g, s) = spider_optimal_scheme(n);
            s.validate(&g).unwrap();
            assert_eq!(
                s.effective_cost(&g) as u64,
                spider_optimal_cost(n as u64),
                "G_{n}"
            );
            assert_eq!(s.jumps(&g) as u64, spider_optimal_jumps(n as u64), "G_{n}");
        }
    }

    #[test]
    fn certificate_accepts_optimal_and_any_valid_scheme() {
        for n in [3u32, 5, 8] {
            let (g, s) = spider_optimal_scheme(n);
            assert!(spider_bound_certificate(n, &s, &g));
            // a deliberately wasteful scheme also respects the lower bound
            let waste =
                PebblingScheme::from_edge_sequence(&g, &(0..g.edge_count()).collect::<Vec<_>>())
                    .unwrap();
            assert!(spider_bound_certificate(n, &waste, &g));
        }
    }

    #[test]
    fn certificate_rejects_invalid_schemes() {
        let (g, _) = spider_optimal_scheme(3);
        let partial = PebblingScheme::from_configs(vec![]).unwrap();
        assert!(!spider_bound_certificate(3, &partial, &g));
    }

    #[test]
    fn equijoin_pebbler_realizes_lemma_3_2_closed_form() {
        let g = generators::complete_bipartite(20, 30);
        let s = pebble_equijoin(&g).unwrap();
        assert_eq!(
            s.effective_cost(&g) as u64,
            complete_bipartite_optimal_cost(20, 30)
        );
    }
}

/// Empirical companion to [`spider_optimal_cost`]: the worst-case ratio
/// is *specific to leg length 2*. For the long-legged spiders
/// `S(n, len)` the pendant count of `L(G)` stays `n` while `m = n·len`
/// grows, so `π/m → 1` as legs lengthen — the Figure 1 family is the
/// densest way to pack pendants. Returns the pendant-bound ratio
/// `(m + ⌈(n − 2)/2⌉) / m` as an `f64` (exact for `len = 2`, a lower
/// bound otherwise).
pub fn spider_legs_ratio_bound(n: u64, len: u64) -> f64 {
    assert!(n >= 1 && len >= 1);
    let m = n * len;
    (m + n.saturating_sub(2).div_ceil(2)) as f64 / m as f64
}

#[cfg(test)]
mod spider_legs_tests {
    use super::*;
    use crate::exact::optimal_effective_cost;

    #[test]
    fn ratio_decays_with_leg_length() {
        // exact optima for S(4, len), len = 2..4 (m = 8, 12, 16); the
        // star (len = 1) is perfect, the peak is at len = 2, and ratios
        // decay monotonically beyond it
        let mut prev_ratio = f64::INFINITY;
        for len in 2..=4u32 {
            let g = generators::spider_legs(4, len);
            let m = g.edge_count();
            let pi = optimal_effective_cost(&g).unwrap();
            let ratio = pi as f64 / m as f64;
            assert!(
                ratio <= prev_ratio + 1e-9,
                "ratio must not increase with leg length: S(4,{len}) = {ratio}"
            );
            prev_ratio = ratio;
            // the pendant bound stays valid for every leg length
            assert!(pi >= crate::bounds::pendant_lower_bound(&g));
        }
    }

    #[test]
    fn leg_length_two_maximizes_the_ratio() {
        // among S(3, len) for len = 1..5, the Figure 1 shape (len = 2)
        // has the highest exact π/m
        let mut best = (0u32, 0.0f64);
        for len in 1..=5u32 {
            let g = generators::spider_legs(3, len);
            let pi = optimal_effective_cost(&g).unwrap() as f64;
            let ratio = pi / g.edge_count() as f64;
            if ratio > best.1 {
                best = (len, ratio);
            }
        }
        assert_eq!(best.0, 2, "Figure 1's leg length is extremal, got {best:?}");
    }

    #[test]
    fn ratio_bound_formula_matches_exact_for_len_2() {
        for n in [3u64, 4, 6] {
            let g = generators::spider(n as u32);
            let pi = optimal_effective_cost(&g).unwrap() as f64;
            let m = g.edge_count() as f64;
            assert!(
                (pi / m - spider_legs_ratio_bound(n, 2)).abs() < 1e-9,
                "n = {n}"
            );
        }
    }
}
