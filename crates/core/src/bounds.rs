//! Combinatorial bounds on pebbling cost (§2.1 and §3).
//!
//! * Lemma 2.1: `m + 1 ≤ π̂(G) ≤ 2m` for any graph with `m ≥ 1` edges;
//! * Corollary 2.1 / Lemma 2.3: `m ≤ π(G) ≤ 2m − 1` for connected `G`
//!   (and for general `G` by additivity);
//! * Theorem 3.1: `π(G) ≤ 1.25m − 1` for connected bipartite `G`
//!   (`⌈1.25m⌉ − 1` in integer form — see [`upper_bound_effective`]);
//! * a pendant-vertex *lower* bound distilled from Theorem 3.3's
//!   `B⁺`/`B⁻` jump-counting argument, which certifies the spiders'
//!   worst-case optimality without brute force.
//!
//! Cast audit: every `as usize` in this module widens a `u32` (component
//! counts and ids from [`ComponentMap`], [`betti_number`]) on the
//! workspace's ≥ 32-bit targets, so unlike a narrowing `usize as u32`
//! (see `jp_relalg::parallel::tuple_id` for the checked form) none of
//! them can truncate.

use jp_graph::{betti_number, line_graph, BipartiteGraph, ComponentMap};

/// Lemma 2.1 lower bound on the total cost: `π̂(G) ≥ m + β₀` (each edge
/// deletion is a distinct configuration, each costing at least one move;
/// entering each component costs one extra placement). The paper states
/// the connected form `m + 1`.
pub fn lower_bound_total(g: &BipartiteGraph) -> usize {
    g.edge_count() + betti_number(g) as usize
}

/// Lemma 2.1 upper bound on the total cost: `π̂(G) ≤ 2m` ("in an optimal
/// scheme, at most two moves are required to delete a given edge").
pub fn upper_bound_total(g: &BipartiteGraph) -> usize {
    2 * g.edge_count()
}

/// Lemma 2.3 lower bound on the effective cost: `π(G) ≥ m`.
pub fn lower_bound_effective(g: &BipartiteGraph) -> usize {
    g.edge_count()
}

/// Theorem 3.1 upper bound on the effective cost, summed per component:
/// `π ≤ Σ_c (⌈1.25·m_c⌉ − 1)` where `m_c` ranges over component edge
/// counts. For a single connected component this is `⌈1.25m⌉ − 1`, the
/// integer form of the paper's `1.25m − 1`.
pub fn upper_bound_effective(g: &BipartiteGraph) -> usize {
    let cm = ComponentMap::new(g);
    let mut per_comp = vec![0usize; cm.count as usize];
    for &c in &cm.edge {
        per_comp[c as usize] += 1;
    }
    per_comp.iter().map(|&m| theorem_3_1_bound(m)).sum()
}

/// The Theorem 3.1 bound for one connected component with `m` edges:
/// `⌈5m/4⌉ − 1`, except tiny components where the trivial `2m − 1` bound
/// is smaller is still dominated by it (for `m ≥ 1`, `⌈5m/4⌉ − 1 ≤ 2m−1`).
pub fn theorem_3_1_bound(m: usize) -> usize {
    if m == 0 {
        return 0;
    }
    (5 * m).div_ceil(4) - 1
}

/// Weak upper bound from Corollary 2.1, per component: `π ≤ Σ (2m_c − 1)`.
pub fn weak_upper_bound_effective(g: &BipartiteGraph) -> usize {
    let cm = ComponentMap::new(g);
    let mut per_comp = vec![0usize; cm.count as usize];
    for &c in &cm.edge {
        per_comp[c as usize] += 1;
    }
    per_comp.iter().map(|&m| 2 * m - 1).sum()
}

/// Pendant lower bound (the Theorem 3.3 counting argument, generalized):
/// in the completed line graph, every degree-1 vertex of `L(G)` must be
/// entered or left via a bad edge except possibly the tour's two ends, so
/// a tour over a connected component has at least `⌈(p − 2)/2⌉` jumps,
/// where `p` counts the component's pendant `L(G)` vertices. Hence
/// `π(G) ≥ Σ_c (m_c + max(0, ⌈(p_c − 2)/2⌉))`.
///
/// For the spider `G_n` this evaluates to `2n + ⌈n/2⌉ − 1 + 1`… precisely
/// `m + ⌈(n − 2)/2⌉`, which matches the optimum (see
/// [`crate::families::spider_optimal_cost`]).
pub fn pendant_lower_bound(g: &BipartiteGraph) -> usize {
    // A pendant vertex of L(G) is an edge of G adjacent to exactly one
    // other edge: deg(u) + deg(v) − 2 == 1 for its endpoints (u, v).
    let cm = ComponentMap::new(g);
    let mut m_per = vec![0usize; cm.count as usize];
    let mut p_per = vec![0usize; cm.count as usize];
    for (e, &(l, r)) in g.edges().iter().enumerate() {
        let c = cm.edge[e] as usize;
        m_per[c] += 1;
        let ldeg = g.left_neighbors(l).len();
        let rdeg = g.right_neighbors(r).len();
        if ldeg + rdeg - 2 == 1 {
            p_per[c] += 1;
        }
    }
    (0..m_per.len())
        .map(|c| {
            let jumps = p_per[c].saturating_sub(2).div_ceil(2);
            m_per[c] + jumps
        })
        .sum()
}

/// The best general lower bound on `π(G)` this crate knows:
/// `max(m, pendant bound)`.
pub fn best_lower_bound(g: &BipartiteGraph) -> usize {
    lower_bound_effective(g).max(pendant_lower_bound(g))
}

/// Definition 2.3: `G` has a *perfect* pebbling scheme iff `π(G) = m`.
/// This checks the property exactly via Proposition 2.1 (`L(G)` of every
/// component has a Hamiltonian path) — exponential, small graphs only.
pub fn has_perfect_scheme(g: &BipartiteGraph) -> bool {
    let cm = ComponentMap::new(g);
    cm.edges_by_component().into_iter().all(|edges| {
        let sub = g.edge_subgraph(&edges);
        jp_graph::hamilton::has_hamiltonian_path(&line_graph(&sub))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jp_graph::generators;

    #[test]
    fn bound_sandwich_on_families() {
        for g in [
            generators::complete_bipartite(3, 3),
            generators::spider(4),
            generators::path(6),
            generators::matching(5),
            generators::cycle(3),
        ] {
            let m = g.edge_count();
            assert!(lower_bound_total(&g) > m);
            assert!(lower_bound_total(&g) <= upper_bound_total(&g), "{g}");
            assert!(
                lower_bound_effective(&g) <= upper_bound_effective(&g),
                "{g}"
            );
            assert!(
                upper_bound_effective(&g) <= weak_upper_bound_effective(&g),
                "{g}"
            );
            assert!(best_lower_bound(&g) <= upper_bound_effective(&g), "{g}");
        }
    }

    #[test]
    fn theorem_3_1_bound_values() {
        assert_eq!(theorem_3_1_bound(0), 0);
        assert_eq!(theorem_3_1_bound(1), 1); // ceil(1.25)-1 = 1
        assert_eq!(theorem_3_1_bound(4), 4);
        assert_eq!(theorem_3_1_bound(8), 9); // 10-1
        assert_eq!(theorem_3_1_bound(10), 12); // ceil(12.5)-1
    }

    #[test]
    fn pendant_bound_on_spiders() {
        // Theorem 3.3: π(G_n) = 1.25m − 1 for even n; the pendant bound
        // must certify it.
        for n in [4u32, 6, 8, 20] {
            let g = generators::spider(n);
            let m = 2 * n as usize;
            assert_eq!(pendant_lower_bound(&g), m + (n as usize - 2).div_ceil(2));
            assert_eq!(
                pendant_lower_bound(&g),
                5 * m / 4 - 1,
                "even n exact 1.25m-1"
            );
        }
        // odd n: bound is m + (n-2+1)/2 = m + (n-1)/2
        let g5 = generators::spider(5);
        assert_eq!(pendant_lower_bound(&g5), 10 + 2);
    }

    #[test]
    fn pendant_bound_is_trivial_without_pendants() {
        let g = generators::complete_bipartite(3, 3);
        assert_eq!(pendant_lower_bound(&g), g.edge_count());
        // matchings: every edge is isolated in L(G); p_c = 0 per component
        // (deg sums to 1? deg(u)+deg(v)-2 = 0, not 1) so bound = m.
        let m = generators::matching(4);
        assert_eq!(pendant_lower_bound(&m), 4);
    }

    #[test]
    fn paths_have_pendant_bound_m() {
        // A path's line graph is a path: 2 pendant vertices -> 0 extra.
        let g = generators::path(7);
        assert_eq!(pendant_lower_bound(&g), 7);
    }

    #[test]
    fn perfect_scheme_detection() {
        assert!(has_perfect_scheme(&generators::complete_bipartite(3, 4)));
        assert!(has_perfect_scheme(&generators::path(5)));
        assert!(has_perfect_scheme(&generators::matching(3)));
        assert!(has_perfect_scheme(&generators::cycle(3)));
        assert!(!has_perfect_scheme(&generators::spider(3)));
        assert!(!has_perfect_scheme(&generators::spider(5)));
    }

    #[test]
    fn empty_graph_bounds() {
        let g = jp_graph::BipartiteGraph::new(2, 2, vec![]);
        assert_eq!(lower_bound_total(&g), 0);
        assert_eq!(upper_bound_effective(&g), 0);
        assert_eq!(pendant_lower_bound(&g), 0);
        assert!(has_perfect_scheme(&g));
    }
}
