//! Exact optimal pebbling — the `PEBBLE` problem of Definition 4.1.
//!
//! `PEBBLE` is NP-complete (Theorem 4.2), so exactness costs exponential
//! time: we solve the equivalent minimum-jump Hamiltonian-path problem on
//! `L(G)` (Proposition 2.2) with a Held–Karp bitmask DP, per connected
//! component (justified by the additivity Lemma 2.2). `O(2^m · m · Δ)`
//! time and `O(2^m · m)` bytes per component — practical to `m ≈ 20`
//! edges per component, which is exactly the regime the experiments need
//! (closed-form families cover the large instances).

use crate::memo::Memo;
use crate::scheme::PebblingScheme;
use crate::tsp::Tsp12;
use crate::PebbleError;
use jp_graph::{BipartiteGraph, ComponentMap, Graph};

/// Default per-component edge limit for the exact solver.
pub const MAX_EXACT_EDGES: usize = 20;

const INF: u8 = u8::MAX;

/// Minimum-jump Hamiltonian path over the weight-1 graph `ones`:
/// returns `(tour, jumps)` minimizing the number of weight-2 steps.
///
/// # Panics
/// Panics if `ones` has more than [`MAX_EXACT_EDGES`] vertices (callers
/// gate on size first) or zero vertices.
// audit:allow(obs-coverage) thin wrapper — min_jump_tour_racing opens the exact span
pub fn min_jump_tour(ones: &Graph) -> (Vec<u32>, usize) {
    match min_jump_tour_racing(ones, &|| false) {
        Some(result) => result,
        // audit:allow(panic-freedom) the never-true abandon closure cannot make racing return None
        None => unreachable!("abandon closure is constant false"),
    }
}

/// How many DP subset rows to process between abandon polls. Each row is
/// `O(n · Δ)` work, so this keeps poll overhead invisible while giving the
/// portfolio racer millisecond-scale abort latency on 20-vertex instances.
const ABANDON_POLL_MASKS: usize = 4096;

/// [`min_jump_tour`] that can be raced: `abandon` is polled every
/// [`ABANDON_POLL_MASKS`] DP rows, and a `true` return makes the search
/// give up and return `None`. The portfolio runtime uses this to cut the
/// exact strategy short the moment a heuristic proves it can no longer
/// win. With a constant-`false` closure the behaviour and result are
/// exactly [`min_jump_tour`]'s.
///
/// # Panics
/// As [`min_jump_tour`].
pub(crate) fn min_jump_tour_racing(
    ones: &Graph,
    abandon: &dyn Fn() -> bool,
) -> Option<(Vec<u32>, usize)> {
    let _span = jp_obs::span("exact", "min_jump_tour");
    let _mem = jp_pulse::mem_scope(jp_pulse::MemScope::Solver);
    let n = ones.vertex_count() as usize;
    // audit:allow(panic-freedom) documented precondition — see "# Panics" above; callers gate on size
    assert!(n >= 1, "empty TSP instance");
    // audit:allow(panic-freedom) documented precondition — see "# Panics" above; callers gate on size
    assert!(
        n <= MAX_EXACT_EDGES,
        "instance too large for exact DP ({n} nodes)"
    );
    if n == 1 {
        jp_obs::counter("exact", "dp_states", 1);
        return Some((vec![0], 0));
    }
    let full = (1usize << n) - 1;
    let mut dp = vec![INF; (full + 1) * n];
    jp_obs::counter("exact", "dp_states", dp.len() as u64);
    jp_obs::counter("exact", "dp_bytes", dp.len() as u64);
    jp_pulse::counter_add("exact.dp_states", dp.len() as u64);
    let mut subset_iterations: u64 = 0;
    let mut dp_improvements: u64 = 0;
    for v in 0..n {
        // audit:allow(panic-freedom) dp has (full+1)*n slots; (1<<v) <= full and v < n
        dp[(1usize << v) * n + v] = 0;
    }
    for mask in 1..=full {
        if mask % ABANDON_POLL_MASKS == 0 && abandon() {
            jp_obs::counter("exact", "abandoned_at_mask", mask as u64);
            return None;
        }
        for v in 0..n {
            // audit:allow(panic-freedom) mask <= full and v < n, so mask*n+v < dp.len()
            let cur = dp[mask * n + v];
            if cur == INF || mask & (1 << v) == 0 {
                continue;
            }
            subset_iterations += 1;
            // good transitions
            for &w in ones.neighbors(v as u32) {
                let w = w as usize;
                if mask & (1 << w) == 0 {
                    // audit:allow(panic-freedom) mask|bit(w) <= full (w < n) and dp.len() = (full+1)*n
                    let slot = &mut dp[(mask | (1 << w)) * n + w];
                    if cur < *slot {
                        *slot = cur;
                        dp_improvements += 1;
                    }
                }
            }
            // bad transitions (jump to any unvisited node)
            let cost = cur.saturating_add(1);
            let mut rest = !mask & full;
            while rest != 0 {
                let w = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                // audit:allow(panic-freedom) rest ⊆ full, so w < n and mask|bit(w) <= full
                let slot = &mut dp[(mask | (1 << w)) * n + w];
                if cost < *slot {
                    *slot = cost;
                    dp_improvements += 1;
                }
            }
        }
    }
    jp_obs::counter("exact", "subset_iterations", subset_iterations);
    jp_obs::counter("exact", "dp_improvements", dp_improvements);
    let (mut best_v, mut best) = (0usize, INF);
    for v in 0..n {
        // audit:allow(panic-freedom) full*n+v < (full+1)*n = dp.len() for v < n
        if dp[full * n + v] < best {
            best = dp[full * n + v];
            best_v = v;
        }
    }
    // Reconstruct backwards.
    let mut tour = vec![best_v as u32];
    let mut mask = full;
    let mut v = best_v;
    let mut jumps_left = best;
    while mask.count_ones() > 1 {
        let prev_mask = mask & !(1usize << v);
        let mut found = false;
        for u in 0..n {
            if prev_mask & (1 << u) == 0 {
                continue;
            }
            let step = if ones.has_edge(u as u32, v as u32) {
                0
            } else {
                1
            };
            // audit:allow(panic-freedom) prev_mask < mask <= full and u < n
            if step <= jumps_left && dp[prev_mask * n + u] == jumps_left - step {
                tour.push(u as u32);
                mask = prev_mask;
                v = u;
                jumps_left -= step;
                found = true;
                break;
            }
        }
        debug_assert!(found, "DP table inconsistent");
        if !found {
            break;
        }
    }
    tour.reverse();
    Some((tour, best as usize))
}

/// Per-component exact solution: `(edge order, jumps)` for each connected
/// component, in component order.
type ComponentSolutions = Vec<(Vec<usize>, usize)>;

fn solve_components(g: &BipartiteGraph, limit: usize) -> Result<ComponentSolutions, PebbleError> {
    solve_components_memo(g, limit, None)
}

fn solve_components_memo(
    g: &BipartiteGraph,
    limit: usize,
    memo: Option<&Memo>,
) -> Result<ComponentSolutions, PebbleError> {
    match solve_components_racing(g, limit, &|| false, memo)? {
        Some(comps) => Ok(comps),
        // audit:allow(panic-freedom) the never-true abandon closure cannot make racing return None
        None => unreachable!("abandon closure is constant false"),
    }
}

/// [`solve_components`] that can be raced: `abandon` is threaded into
/// every per-component [`min_jump_tour_racing`] call. `Ok(None)` means
/// the search was abandoned mid-flight; `Err` still reports structural
/// problems (an over-limit component) regardless of the race.
///
/// With a memo, each component first tries the recognizers and the
/// *exact-only* slice of the cache — both proved optimal, so the result
/// keeps the exact solver's guarantee — and a served component skips its
/// size check entirely: a recognized `K_{6,7}` no longer trips the
/// Held–Karp wall. Fresh DP solutions are recorded as exact entries.
/// With `memo == None` the behaviour is byte-for-byte the old one.
pub(crate) fn solve_components_racing(
    g: &BipartiteGraph,
    limit: usize,
    abandon: &dyn Fn() -> bool,
    memo: Option<&Memo>,
) -> Result<Option<ComponentSolutions>, PebbleError> {
    let _span = jp_obs::span("exact", "solve");
    let cm = ComponentMap::new(g);
    jp_obs::counter("exact", "components", u64::from(cm.count));
    jp_obs::counter("exact", "edges", g.edge_count() as u64);
    let mut out = Vec::with_capacity(cm.count as usize);
    for edges in cm.edges_by_component() {
        // edge_subgraph keeps edges in the order of `edges` after sorting?
        // BipartiteGraph::new sorts edges; map subgraph edge ids back to
        // original ids through coordinates: subgraph construction
        // preserves the relative lexicographic order of edges, and
        // `edges` came sorted from edges_by_component (ascending ids =
        // lexicographic), so sub edge id i is original edge edges[i].
        let sub = g.edge_subgraph(&edges);
        if let Some(memo) = memo {
            if let Some((sub_order, cost)) = memo.solve_component(&sub, true) {
                let order: Vec<usize> = sub_order
                    .iter()
                    .filter_map(|&e| edges.get(e).copied())
                    .collect();
                let jumps = cost.saturating_sub(order.len());
                jp_obs::counter("exact", "jumps", jumps as u64);
                out.push((order, jumps));
                continue;
            }
        }
        if edges.len() > limit {
            return Err(PebbleError::TooLarge {
                component_edges: edges.len(),
                limit,
            });
        }
        let lg = jp_graph::line_graph(&sub);
        let Some((tour, jumps)) = min_jump_tour_racing(&lg, abandon) else {
            return Ok(None);
        };
        if let Some(memo) = memo {
            let sub_order: Vec<usize> = tour.iter().map(|&e| e as usize).collect();
            memo.record_component(&sub, &sub_order, true);
        }
        // audit:allow(panic-freedom) tour is a permutation of line-graph vertices 0..edges.len()
        let order: Vec<usize> = tour.iter().map(|&e| edges[e as usize]).collect();
        jp_obs::counter("exact", "jumps", jumps as u64);
        out.push((order, jumps));
    }
    Ok(Some(out))
}

/// The optimal effective cost `π(G)`: `Σ_c (m_c + J_c)` over components.
///
/// ```
/// use jp_graph::generators;
/// use jp_pebble::exact::optimal_effective_cost;
///
/// // Theorem 3.3: the Figure 1 spider G_4 costs 1.25·m − 1.
/// let g = generators::spider(4);
/// assert_eq!(optimal_effective_cost(&g).unwrap(), 9); // m = 8
/// // Complete bipartite graphs pebble perfectly (Lemma 3.2).
/// let k = generators::complete_bipartite(3, 3);
/// assert_eq!(optimal_effective_cost(&k).unwrap(), 9); // = m
/// ```
// audit:allow(obs-coverage) thin wrapper — solve_components opens the exact.solve span
pub fn optimal_effective_cost(g: &BipartiteGraph) -> Result<usize, PebbleError> {
    optimal_effective_cost_with_limit(g, MAX_EXACT_EDGES)
}

/// [`optimal_effective_cost`] with a caller-chosen per-component limit
/// (memory grows as `2^limit`; beyond ~24 is unreasonable).
// audit:allow(obs-coverage) thin wrapper — solve_components opens the exact.solve span
pub fn optimal_effective_cost_with_limit(
    g: &BipartiteGraph,
    limit: usize,
) -> Result<usize, PebbleError> {
    let comps = solve_components(g, limit)?;
    Ok(comps.iter().map(|(order, jumps)| order.len() + jumps).sum())
}

/// The optimal total cost `π̂(G) = π(G) + β₀(G)`.
// audit:allow(obs-coverage) thin wrapper — solve_components opens the exact.solve span
pub fn optimal_total_cost(g: &BipartiteGraph) -> Result<usize, PebbleError> {
    Ok(optimal_effective_cost(g)? + jp_graph::betti_number(g) as usize)
}

/// An optimal pebbling scheme, concatenating per-component optimal edge
/// orders (Lemma 2.2: nothing is gained by interleaving components).
// audit:allow(obs-coverage) thin wrapper — solve_components opens the exact.solve span
pub fn optimal_scheme(g: &BipartiteGraph) -> Result<PebblingScheme, PebbleError> {
    let comps = solve_components(g, MAX_EXACT_EDGES)?;
    let order: Vec<usize> = comps.into_iter().flat_map(|(o, _)| o).collect();
    PebblingScheme::from_edge_sequence(g, &order)
}

/// [`optimal_effective_cost`] consulting a memo: recognized families and
/// exact cache hits are served without the DP (and without its size
/// limit); every fresh DP solve is recorded. The cost is still exact.
// audit:allow(obs-coverage) thin wrapper — solve_components opens the exact.solve span
pub fn optimal_effective_cost_memo(g: &BipartiteGraph, memo: &Memo) -> Result<usize, PebbleError> {
    let comps = solve_components_memo(g, MAX_EXACT_EDGES, Some(memo))?;
    Ok(comps.iter().map(|(order, jumps)| order.len() + jumps).sum())
}

/// [`optimal_scheme`] consulting a memo; see
/// [`optimal_effective_cost_memo`].
// audit:allow(obs-coverage) thin wrapper — solve_components opens the exact.solve span
pub fn optimal_scheme_memo(g: &BipartiteGraph, memo: &Memo) -> Result<PebblingScheme, PebbleError> {
    let comps = solve_components_memo(g, MAX_EXACT_EDGES, Some(memo))?;
    let order: Vec<usize> = comps.into_iter().flat_map(|(o, _)| o).collect();
    PebblingScheme::from_edge_sequence(g, &order)
}

/// `PEBBLE(D)` (Definition 4.1): decide whether `π(G) ≤ K`. Decidable
/// exactly only for small components; NP-complete in general
/// (Theorem 4.2).
// audit:allow(obs-coverage) thin wrapper — solve_components opens the exact.solve span
pub fn pebble_decision(g: &BipartiteGraph, k: usize) -> Result<bool, PebbleError> {
    Ok(optimal_effective_cost(g)? <= k)
}

/// Exact minimum TSP(1,2) tour cost over an arbitrary instance (used by
/// the §4 reduction experiments, where instances are not line graphs).
///
/// # Panics
/// Panics if the instance has more than [`MAX_EXACT_EDGES`] nodes (the
/// Held–Karp memory wall); gate on [`Tsp12::n`] first.
// audit:allow(obs-coverage) thin wrapper — min_jump_tour opens the exact span
pub fn optimal_tsp_cost(tsp: &Tsp12) -> usize {
    let n = tsp.n();
    if n == 0 {
        return 0;
    }
    let (_, jumps) = min_jump_tour(tsp.ones());
    n - 1 + jumps
}

#[cfg(test)]
mod tests {
    use super::*;
    use jp_graph::generators;

    #[test]
    fn perfect_families_cost_m() {
        for g in [
            generators::complete_bipartite(2, 3),
            generators::complete_bipartite(3, 3),
            generators::path(6),
            generators::cycle(3),
            generators::star(5),
        ] {
            assert_eq!(optimal_effective_cost(&g).unwrap(), g.edge_count(), "{g}");
        }
    }

    #[test]
    fn matching_total_cost_2m() {
        // CLAIM(L2.4)
        // Lemma 2.4 via the exact solver.
        for m in 1..6 {
            let g = generators::matching(m);
            assert_eq!(optimal_total_cost(&g).unwrap(), 2 * m as usize);
            assert_eq!(optimal_effective_cost(&g).unwrap(), m as usize);
        }
    }

    #[test]
    fn spider_optima_match_closed_form() {
        // π(G_n) = m + ceil((n−2)/2); equals 1.25m − 1 for even n (T3.3).
        for n in 2..8u32 {
            let g = generators::spider(n);
            let m = 2 * n as usize;
            let expect = m + (n as usize).saturating_sub(2).div_ceil(2);
            assert_eq!(optimal_effective_cost(&g).unwrap(), expect, "G_{n}");
        }
        // even-n paper form
        let g6 = generators::spider(6);
        assert_eq!(optimal_effective_cost(&g6).unwrap(), 5 * 12 / 4 - 1);
    }

    #[test]
    fn additivity_lemma_2_2() {
        // CLAIM(L2.2)
        let a = generators::spider(3);
        let b = generators::path(4);
        let u = a.disjoint_union(&b);
        assert_eq!(
            optimal_effective_cost(&u).unwrap(),
            optimal_effective_cost(&a).unwrap() + optimal_effective_cost(&b).unwrap()
        );
        assert_eq!(
            optimal_total_cost(&u).unwrap(),
            optimal_total_cost(&a).unwrap() + optimal_total_cost(&b).unwrap()
        );
    }

    #[test]
    fn optimal_scheme_is_valid_and_matches_cost() {
        for g in [
            generators::spider(4),
            generators::random_connected_bipartite(4, 4, 9, 5),
            generators::matching(3).disjoint_union(&generators::path(3)),
        ] {
            let s = optimal_scheme(&g).unwrap();
            s.validate(&g).unwrap();
            assert_eq!(
                s.effective_cost(&g),
                optimal_effective_cost(&g).unwrap(),
                "{g}"
            );
        }
    }

    #[test]
    fn decision_procedure() {
        let g = generators::spider(4); // π = 9
        assert!(pebble_decision(&g, 9).unwrap());
        assert!(!pebble_decision(&g, 8).unwrap());
        assert!(pebble_decision(&g, 100).unwrap());
    }

    #[test]
    fn too_large_reports_error() {
        let g = generators::complete_bipartite(5, 5); // 25 edges in one component
        match optimal_effective_cost(&g) {
            Err(PebbleError::TooLarge {
                component_edges: 25,
                limit,
            }) => {
                assert_eq!(limit, MAX_EXACT_EDGES);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn memo_lifts_recognized_families_past_the_dp_wall() {
        // K_{5,5} alone is TooLarge (previous test); with a memo the
        // boustrophedon recognizer answers it exactly, and the result
        // stays exact: π(K_{5,5}) = 25 (Lemma 3.2).
        let memo = Memo::new();
        let g = generators::complete_bipartite(5, 5);
        assert_eq!(optimal_effective_cost_memo(&g, &memo).unwrap(), 25);
        let s = optimal_scheme_memo(&g, &memo).unwrap();
        s.validate(&g).unwrap();
        assert_eq!(s.effective_cost(&g), 25);
    }

    #[test]
    fn memo_cost_agrees_with_fresh_exact() {
        let memo = Memo::new();
        for seed in 0..6 {
            let g = generators::random_connected_bipartite(4, 4, 9, seed);
            let fresh = optimal_effective_cost(&g).unwrap();
            // first call records, second is served from the cache
            assert_eq!(optimal_effective_cost_memo(&g, &memo).unwrap(), fresh);
            assert_eq!(optimal_effective_cost_memo(&g, &memo).unwrap(), fresh);
        }
    }

    #[test]
    fn optimal_cost_within_bounds() {
        // CLAIM(L2.1, C2.1)
        use crate::bounds;
        for seed in 0..8 {
            let g = generators::random_connected_bipartite(3, 4, 8, seed);
            let opt = optimal_effective_cost(&g).unwrap();
            assert!(opt >= bounds::best_lower_bound(&g), "seed {seed}");
            assert!(opt <= bounds::upper_bound_effective(&g), "seed {seed}");
        }
    }

    #[test]
    fn min_jump_tour_reconstruction_is_consistent() {
        let g = generators::spider(5);
        let lg = jp_graph::line_graph(&g);
        let (tour, jumps) = min_jump_tour(&lg);
        assert_eq!(tour.len(), lg.vertex_count() as usize);
        let recount = tour.windows(2).filter(|w| !lg.has_edge(w[0], w[1])).count();
        assert_eq!(recount, jumps);
    }
}
