//! The TSP(1,2) view of pebbling (§2.2 of the paper).
//!
//! View `L(G)` as a complete weighted graph: weight 1 between adjacent
//! line-graph vertices ("good" edges), weight 2 otherwise ("bad" edges —
//! traversing one is a *jump*). Then:
//!
//! * Proposition 2.1: `π(G) = m` iff `L(G)` has a Hamiltonian path;
//! * Proposition 2.2: the optimal TSP tour (a path visiting every node
//!   exactly once) in completed `L(G)` costs exactly `π(G) − 1`;
//! * the cost of any tour is `m − 1 + J` where `J` is its jump count.
//!
//! [`tour_to_scheme`] and [`scheme_to_tour`] realize the two directions of
//! that correspondence constructively, cost-preservingly.

use crate::scheme::PebblingScheme;
use crate::PebbleError;
use jp_graph::{line_graph, BipartiteGraph, Graph};

/// A TSP(1,2) instance: a complete graph whose weight-1 edges are the
/// edges of an underlying simple graph; all other pairs have weight 2.
#[derive(Debug, Clone)]
pub struct Tsp12 {
    ones: Graph,
}

impl Tsp12 {
    /// Wraps a weight-1 graph.
    pub fn new(weight_one_graph: Graph) -> Self {
        Tsp12 {
            ones: weight_one_graph,
        }
    }

    /// The instance over the line graph of a bipartite graph — the object
    /// Propositions 2.1/2.2 talk about. Node `e` of the instance is edge
    /// `e` of `g`.
    pub fn from_join_graph(g: &BipartiteGraph) -> Self {
        Tsp12 {
            ones: line_graph(g),
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.ones.vertex_count() as usize
    }

    /// The weight-1 graph.
    pub fn ones(&self) -> &Graph {
        &self.ones
    }

    /// Edge weight: 1 for good edges, 2 for bad ones.
    pub fn weight(&self, u: u32, v: u32) -> usize {
        if self.ones.has_edge(u, v) {
            1
        } else {
            2
        }
    }

    /// Whether `tour` is a permutation of the nodes.
    pub fn is_valid_tour(&self, tour: &[u32]) -> bool {
        if tour.len() != self.n() {
            return false;
        }
        let mut seen = vec![false; self.n()];
        for &v in tour {
            if (v as usize) >= self.n() || seen[v as usize] {
                return false;
            }
            seen[v as usize] = true;
        }
        true
    }

    /// Cost of a tour (a Hamiltonian *path*, per the paper's convention
    /// that "the first vertex of the tour counts 0"): sum of the `n − 1`
    /// step weights, i.e. `n − 1 + jumps`.
    pub fn tour_cost(&self, tour: &[u32]) -> usize {
        debug_assert!(self.is_valid_tour(tour));
        tour.windows(2).map(|w| self.weight(w[0], w[1])).sum()
    }

    /// Number of bad (weight-2) steps in the tour — its *extra cost* `J`.
    pub fn tour_jumps(&self, tour: &[u32]) -> usize {
        tour.windows(2)
            .filter(|w| !self.ones.has_edge(w[0], w[1]))
            .count()
    }
}

/// Converts a TSP tour over `L(G)` (an edge order of `g`) into a pebbling
/// scheme of the same effective cost: `π(P) = tour_cost + 1` for connected
/// `g` (Proposition 2.2 constructively).
pub fn tour_to_scheme(g: &BipartiteGraph, tour: &[u32]) -> Result<PebblingScheme, PebbleError> {
    let order: Vec<usize> = tour.iter().map(|&e| e as usize).collect();
    PebblingScheme::from_edge_sequence(g, &order)
}

/// Converts a pebbling scheme into a TSP tour over `L(G)` — the edges in
/// deletion order. For *connected* `g` the tour costs at most
/// `π̂(P) − 2 = π(P) − 1` (Proposition 2.2's other direction); for
/// disconnected graphs each component boundary costs one weight-2 step,
/// so the bound is `π̂(P) − 2` overall. The scheme must be valid for `g`.
pub fn scheme_to_tour(g: &BipartiteGraph, scheme: &PebblingScheme) -> Vec<u32> {
    scheme
        .deletion_order(g)
        .into_iter()
        .flatten()
        .map(|e| e as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jp_graph::generators;

    #[test]
    fn weights_and_validity() {
        let g = generators::path(3); // L(G) is a path e0-e1-e2
        let tsp = Tsp12::from_join_graph(&g);
        assert_eq!(tsp.n(), 3);
        assert_eq!(tsp.weight(0, 1), 1);
        assert_eq!(tsp.weight(0, 2), 2);
        assert!(tsp.is_valid_tour(&[2, 1, 0]));
        assert!(!tsp.is_valid_tour(&[0, 1]));
        assert!(!tsp.is_valid_tour(&[0, 1, 1]));
        assert!(!tsp.is_valid_tour(&[0, 1, 3]));
    }

    #[test]
    fn tour_cost_is_m_minus_1_plus_jumps() {
        let g = generators::spider(3); // m = 6
        let tsp = Tsp12::from_join_graph(&g);
        let tour: Vec<u32> = (0..6).collect();
        assert_eq!(tsp.tour_cost(&tour), 5 + tsp.tour_jumps(&tour));
    }

    #[test]
    fn good_tour_converts_to_perfect_scheme() {
        // path graph: edge order 0,1,2 is jump-free
        let g = generators::path(3);
        let tsp = Tsp12::from_join_graph(&g);
        let tour = vec![0u32, 1, 2];
        assert_eq!(tsp.tour_jumps(&tour), 0);
        let s = tour_to_scheme(&g, &tour).unwrap();
        s.validate(&g).unwrap();
        // Proposition 2.2: π(P) = tour cost + 1
        assert_eq!(s.effective_cost(&g), tsp.tour_cost(&tour) + 1);
        assert_eq!(s.effective_cost(&g), 3); // perfect
    }

    #[test]
    fn tour_with_jumps_costs_proportionally() {
        let g = generators::matching(3);
        let tsp = Tsp12::from_join_graph(&g);
        let tour = vec![0u32, 1, 2];
        assert_eq!(tsp.tour_jumps(&tour), 2);
        let s = tour_to_scheme(&g, &tour).unwrap();
        s.validate(&g).unwrap();
        // π̂ = m + jumps + β₀ = 3 + 2 + ... careful: matching has β₀ = 3;
        // π = π̂ − 3. Tour cost = 2 + 2·1... = m−1+J = 4.
        assert_eq!(tsp.tour_cost(&tour), 4);
        assert_eq!(s.cost(), 6); // Lemma 2.4: 2m
        assert_eq!(s.effective_cost(&g), 3);
    }

    #[test]
    fn scheme_round_trips_through_tour() {
        let g = generators::spider(4);
        let tour: Vec<u32> = vec![0, 2, 1, 3, 4, 6, 5, 7];
        let s = tour_to_scheme(&g, &tour).unwrap();
        let back = scheme_to_tour(&g, &s);
        assert_eq!(back, tour);
        // and the tour cost matches the scheme's effective cost − 1
        let tsp = Tsp12::from_join_graph(&g);
        assert_eq!(tsp.tour_cost(&back) + 1, s.effective_cost(&g));
    }

    #[test]
    fn proposition_2_1_on_small_graphs() {
        // π(G) = m iff L(G) has a Hamiltonian path: check both directions
        // against the exact solver.
        use crate::exact::optimal_effective_cost;
        for g in [
            generators::path(4),
            generators::cycle(3),
            generators::complete_bipartite(2, 3),
            generators::spider(3),
            generators::spider(4),
        ] {
            let traceable = jp_graph::hamilton::has_hamiltonian_path(&line_graph(&g));
            let perfect = optimal_effective_cost(&g).unwrap() == g.edge_count();
            assert_eq!(traceable, perfect, "{g}");
        }
    }
}
