//! Pebbling configurations and schemes (§2 and §2.1 of the paper).
//!
//! The pebble game: two pebbles sit on vertices of the join graph; when
//! the pebbles cover the two endpoints of an edge, that edge is deleted.
//! "In a single move, one of the two pebbles can be moved to another node"
//! — *any* node, not just a neighbour. A pebbling scheme is a sequence of
//! configurations that deletes all edges.
//!
//! # Cost accounting
//!
//! We store schemes in **canonical form**: a sequence of configurations in
//! which consecutive configurations differ in *exactly one* pebble
//! position. Reaching the first configuration takes two placements; each
//! subsequent configuration takes one move, so
//!
//! ```text
//! π̂(P) = #configurations + 1        (Definition 2.1)
//! π(P)  = π̂(P) − β₀(G)              (Definition 2.2)
//! ```
//!
//! The canonical form makes Definition 2.1's `k + 1` literal: a
//! configuration pair that moves both pebbles is represented by the
//! intermediate configuration, which is exactly how the definition counts
//! it (two moves). [`PebblingScheme::from_edge_sequence`] inserts those
//! intermediates automatically.

use crate::PebbleError;
use jp_graph::{betti_number, BipartiteGraph, Vertex};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A pebbling configuration: the (unordered) positions of the two pebbles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Config {
    /// First pebble position.
    pub a: Vertex,
    /// Second pebble position.
    pub b: Vertex,
}

impl Config {
    /// Builds a configuration; order of the pebbles is irrelevant.
    pub fn new(a: Vertex, b: Vertex) -> Self {
        Config { a, b }
    }

    /// Whether the configuration covers vertex `v` with either pebble.
    pub fn covers(&self, v: Vertex) -> bool {
        self.a == v || self.b == v
    }

    /// Whether the two configurations denote the same pebble multiset.
    pub fn same_positions(&self, other: &Config) -> bool {
        (self.a == other.a && self.b == other.b) || (self.a == other.b && self.b == other.a)
    }

    /// Number of pebbles that must move to go from `self` to `other`
    /// (0, 1, or 2), treating configurations as multisets.
    pub fn moves_to(&self, other: &Config) -> u8 {
        if self.same_positions(other) {
            return 0;
        }
        let shared = other.covers(self.a) || other.covers(self.b);
        if shared {
            1
        } else {
            2
        }
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.a, self.b)
    }
}

/// A pebbling scheme in canonical form (consecutive configurations differ
/// in exactly one pebble).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PebblingScheme {
    configs: Vec<Config>,
}

impl PebblingScheme {
    /// Builds a scheme from explicit configurations, checking the
    /// canonical-form invariant.
    pub fn from_configs(configs: Vec<Config>) -> Result<Self, PebbleError> {
        for (i, w) in configs.windows(2).enumerate() {
            if let [prev, next] = w {
                if prev.moves_to(next) != 1 {
                    return Err(PebbleError::NotCanonical { at: i });
                }
            }
        }
        Ok(PebblingScheme { configs })
    }

    /// Builds a scheme that deletes the graph's edges in the given order,
    /// inserting intermediate configurations whenever both pebbles must
    /// move. `edge_ids` must cover every edge of `g` at least once
    /// (repeats are allowed and cost moves but delete nothing new).
    ///
    /// ```
    /// use jp_graph::generators;
    /// use jp_pebble::PebblingScheme;
    ///
    /// // A matching needs two moves per edge (Lemma 2.4: π̂ = 2m).
    /// let g = generators::matching(3);
    /// let s = PebblingScheme::from_edge_sequence(&g, &[0, 1, 2]).unwrap();
    /// assert_eq!(s.cost(), 6);
    /// assert_eq!(s.effective_cost(&g), 3);
    /// ```
    pub fn from_edge_sequence(g: &BipartiteGraph, edge_ids: &[usize]) -> Result<Self, PebbleError> {
        if g.edge_count() == 0 {
            return Ok(PebblingScheme {
                configs: Vec::new(),
            });
        }
        let mut seen = vec![false; g.edge_count()];
        let mut configs: Vec<Config> = Vec::with_capacity(edge_ids.len() + 4);
        for &e in edge_ids {
            match seen.get_mut(e) {
                Some(slot) => *slot = true,
                None => return Err(PebbleError::EdgeOutOfRange { edge: e }),
            }
            let (u, v) = g.edge_vertices(e);
            let target = Config::new(u, v);
            match configs.last() {
                None => configs.push(target),
                Some(last) => match last.moves_to(&target) {
                    0 => {}
                    1 => configs.push(target),
                    _ => {
                        // Both intermediates (u, last.b) and (last.a, v) are
                        // one move from each end. Prefer one that does not
                        // land on an edge the sequence has not reached yet —
                        // otherwise that edge is deleted early and the
                        // scheme's deletion order diverges from `edge_ids`.
                        let mid_a = Config::new(u, last.b);
                        let mid_b = Config::new(last.a, v);
                        let covers_fresh = |c: &Config| {
                            edge_covered(g, c).is_some_and(|e| seen.get(e) == Some(&false))
                        };
                        let mid = if covers_fresh(&mid_a) && !covers_fresh(&mid_b) {
                            mid_b
                        } else {
                            mid_a
                        };
                        configs.push(mid);
                        configs.push(target);
                    }
                },
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(PebbleError::EdgeNotDeleted { edge: missing });
        }
        Ok(PebblingScheme { configs })
    }

    /// The configurations, in order.
    pub fn configs(&self) -> &[Config] {
        &self.configs
    }

    /// Number of configurations `k`.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether the scheme is empty (only valid for edgeless graphs).
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// The total cost `π̂(P) = k + 1` (Definition 2.1). The empty scheme
    /// (edgeless graph) costs 0.
    pub fn cost(&self) -> usize {
        if self.configs.is_empty() {
            0
        } else {
            self.configs.len() + 1
        }
    }

    /// The effective cost `π(P) = π̂(P) − β₀(G)` (Definition 2.2).
    ///
    /// Saturates at 0 when the scheme is paired with a graph it cannot
    /// be valid for (a valid scheme always has `π̂ ≥ m + β₀`); call
    /// [`PebblingScheme::validate`] to detect such mismatches.
    pub fn effective_cost(&self, g: &BipartiteGraph) -> usize {
        self.cost().saturating_sub(betti_number(g) as usize)
    }

    /// Validates the scheme against a graph: every pebbled vertex exists,
    /// the configurations are in canonical form, and every edge of `g` is
    /// covered by some configuration.
    pub fn validate(&self, g: &BipartiteGraph) -> Result<(), PebbleError> {
        for c in &self.configs {
            for v in [c.a, c.b] {
                let side_count = match v.side {
                    jp_graph::Side::Left => g.left_count(),
                    jp_graph::Side::Right => g.right_count(),
                };
                if v.index >= side_count {
                    return Err(PebbleError::VertexOutOfRange {
                        vertex: v,
                        side_count,
                    });
                }
            }
        }
        for (i, w) in self.configs.windows(2).enumerate() {
            if let [prev, next] = w {
                if prev.moves_to(next) != 1 {
                    return Err(PebbleError::NotCanonical { at: i });
                }
            }
        }
        let mut deleted = vec![false; g.edge_count()];
        for c in &self.configs {
            if let Some(slot) = edge_covered(g, c).and_then(|e| deleted.get_mut(e)) {
                *slot = true;
            }
        }
        match deleted.iter().position(|&d| !d) {
            Some(e) => Err(PebbleError::EdgeNotDeleted { edge: e }),
            None => Ok(()),
        }
    }

    /// The deletion order of edges: for each configuration, the id of the
    /// edge it deletes (first cover wins); configurations that cover no
    /// new edge yield `None` (these are the scheme's *jumps*).
    pub fn deletion_order(&self, g: &BipartiteGraph) -> Vec<Option<usize>> {
        let mut deleted = vec![false; g.edge_count()];
        self.configs
            .iter()
            .map(|c| {
                let e = edge_covered(g, c)?;
                let slot = deleted.get_mut(e)?;
                if *slot {
                    None
                } else {
                    *slot = true;
                    Some(e)
                }
            })
            .collect()
    }

    /// Number of configurations that delete no fresh edge — the "extra
    /// cost" counterpart of the TSP view (§2.2). For a valid scheme over a
    /// connected graph, `cost() == m + jumps() + 1`.
    pub fn jumps(&self, g: &BipartiteGraph) -> usize {
        self.deletion_order(g)
            .iter()
            .filter(|d| d.is_none())
            .count()
    }
}

/// The edge of `g` covered by configuration `c`, if any (pebbles on
/// opposite sides joined by an edge).
fn edge_covered(g: &BipartiteGraph, c: &Config) -> Option<usize> {
    use jp_graph::Side;
    let (l, r) = match (c.a.side, c.b.side) {
        (Side::Left, Side::Right) => (c.a.index, c.b.index),
        (Side::Right, Side::Left) => (c.b.index, c.a.index),
        _ => return None,
    };
    g.edge_index(l, r)
}

impl fmt::Display for PebblingScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PebblingScheme(k={}, π̂={})",
            self.configs.len(),
            self.cost()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jp_graph::generators;

    fn v(side: char, i: u32) -> Vertex {
        match side {
            'l' => Vertex::left(i),
            _ => Vertex::right(i),
        }
    }

    #[test]
    fn config_moves() {
        let c1 = Config::new(v('l', 0), v('r', 0));
        let c2 = Config::new(v('r', 0), v('l', 0));
        let c3 = Config::new(v('l', 0), v('r', 1));
        let c4 = Config::new(v('l', 1), v('r', 1));
        assert_eq!(c1.moves_to(&c2), 0);
        assert!(c1.same_positions(&c2));
        assert_eq!(c1.moves_to(&c3), 1);
        assert_eq!(c1.moves_to(&c4), 2);
        assert_eq!(c3.moves_to(&c4), 1);
    }

    #[test]
    fn scheme_for_larger_graph_is_rejected() {
        // A scheme built for spider(4) pebbles vertices that a small path
        // graph does not have; validate must flag the mismatch even if the
        // small graph's edges all happen to be covered.
        let big = generators::spider(4);
        let order: Vec<usize> = (0..big.edge_count()).collect();
        let s = PebblingScheme::from_edge_sequence(&big, &order).unwrap();
        let small = generators::path(2);
        match s.validate(&small) {
            Err(PebbleError::VertexOutOfRange { .. }) => {}
            other => panic!("expected VertexOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn single_edge_scheme() {
        let g = generators::complete_bipartite(1, 1);
        let s = PebblingScheme::from_edge_sequence(&g, &[0]).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.cost(), 2); // place two pebbles
        assert_eq!(s.effective_cost(&g), 1); // π = m = 1
        s.validate(&g).unwrap();
    }

    #[test]
    fn matching_costs_2m() {
        // Lemma 2.4: π̂ = 2m for a matching.
        for m in 1..6u32 {
            let g = generators::matching(m);
            let order: Vec<usize> = (0..m as usize).collect();
            let s = PebblingScheme::from_edge_sequence(&g, &order).unwrap();
            s.validate(&g).unwrap();
            assert_eq!(s.cost(), 2 * m as usize, "π̂(matching {m})");
            assert_eq!(s.effective_cost(&g), m as usize, "π(matching {m})");
        }
    }

    #[test]
    fn complete_bipartite_boustrophedon_is_perfect() {
        // Lemma 3.2's sequence: (u1,v1),(u1,v2),...,(u1,vl),(u2,vl),...
        let g = generators::complete_bipartite(3, 4);
        // edges are sorted (l, r); boustrophedon order:
        let mut order = Vec::new();
        for l in 0..3u32 {
            let rs: Vec<u32> = if l % 2 == 0 {
                (0..4).collect()
            } else {
                (0..4).rev().collect()
            };
            for r in rs {
                order.push(g.edge_index(l, r).unwrap());
            }
        }
        let s = PebblingScheme::from_edge_sequence(&g, &order).unwrap();
        s.validate(&g).unwrap();
        assert_eq!(s.effective_cost(&g), g.edge_count()); // perfect: π = m
        assert_eq!(s.jumps(&g), 0);
    }

    #[test]
    fn from_edge_sequence_inserts_intermediates() {
        let g = generators::matching(2);
        let s = PebblingScheme::from_edge_sequence(&g, &[0, 1]).unwrap();
        // (r0,s0) -> intermediate -> (r1,s1)
        assert_eq!(s.len(), 3);
        assert_eq!(s.jumps(&g), 1);
        s.validate(&g).unwrap();
    }

    #[test]
    fn from_edge_sequence_rejects_missing_edges() {
        let g = generators::path(3);
        let err = PebblingScheme::from_edge_sequence(&g, &[0, 1]).unwrap_err();
        assert!(matches!(err, PebbleError::EdgeNotDeleted { edge: 2 }));
    }

    #[test]
    fn from_edge_sequence_rejects_out_of_range() {
        let g = generators::path(2);
        let err = PebblingScheme::from_edge_sequence(&g, &[0, 5]).unwrap_err();
        assert!(matches!(err, PebbleError::EdgeOutOfRange { edge: 5 }));
    }

    #[test]
    fn from_configs_rejects_double_moves() {
        let c1 = Config::new(v('l', 0), v('r', 0));
        let c2 = Config::new(v('l', 1), v('r', 1));
        let err = PebblingScheme::from_configs(vec![c1, c2]).unwrap_err();
        assert!(matches!(err, PebbleError::NotCanonical { at: 0 }));
    }

    #[test]
    fn validate_catches_uncovered_edge() {
        let g = generators::path(2); // edges (0,0), (1,0)
        let s = PebblingScheme::from_configs(vec![Config::new(v('l', 0), v('r', 0))]).unwrap();
        assert!(matches!(
            s.validate(&g),
            Err(PebbleError::EdgeNotDeleted { edge: 1 })
        ));
    }

    #[test]
    fn deletion_order_reports_jumps() {
        let g = generators::matching(2);
        let s = PebblingScheme::from_edge_sequence(&g, &[0, 1]).unwrap();
        let order = s.deletion_order(&g);
        assert_eq!(order.len(), 3);
        assert_eq!(order[0], Some(0));
        assert_eq!(order[1], None); // intermediate hop
        assert_eq!(order[2], Some(1));
    }

    #[test]
    fn repeated_edges_cost_but_do_not_break() {
        let g = generators::path(2);
        let s = PebblingScheme::from_edge_sequence(&g, &[0, 1, 0]).unwrap();
        s.validate(&g).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.jumps(&g), 1); // the revisit deletes nothing new
    }

    #[test]
    fn empty_graph_empty_scheme() {
        let g = jp_graph::BipartiteGraph::new(2, 2, vec![]);
        let s = PebblingScheme::from_edge_sequence(&g, &[]).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.cost(), 0);
        assert_eq!(s.effective_cost(&g), 0);
        s.validate(&g).unwrap();
    }

    #[test]
    fn cost_is_m_plus_jumps_plus_one_when_connected() {
        let g = generators::spider(4);
        let order: Vec<usize> = (0..g.edge_count()).collect();
        let s = PebblingScheme::from_edge_sequence(&g, &order).unwrap();
        s.validate(&g).unwrap();
        assert_eq!(s.cost(), g.edge_count() + s.jumps(&g) + 1);
    }
}

/// One step of a scheme replay: the configuration reached and the edge it
/// deletes, if any (`None` marks a jump or a revisit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayStep {
    /// Step index (0-based configuration position).
    pub index: usize,
    /// The configuration after this step.
    pub config: Config,
    /// The edge deleted at this step, if a fresh one is covered.
    pub deletes: Option<usize>,
    /// Cumulative pebble moves so far (the running `π̂`).
    pub moves_so_far: usize,
}

impl PebblingScheme {
    /// Replays the scheme against a graph, yielding one [`ReplayStep`]
    /// per configuration — the step-by-step view the paper's §2 describes
    /// ("a sequence of moves of pebbles in the join graph, the purpose of
    /// which is to delete all edges").
    pub fn replay<'a>(&'a self, g: &'a BipartiteGraph) -> impl Iterator<Item = ReplayStep> + 'a {
        let mut deleted = vec![false; g.edge_count()];
        self.configs
            .iter()
            .enumerate()
            .map(move |(index, &config)| {
                let covered =
                    edge_covered(g, &config).and_then(|e| deleted.get_mut(e).map(|slot| (e, slot)));
                let deletes = match covered {
                    Some((e, slot)) if !*slot => {
                        *slot = true;
                        Some(e)
                    }
                    _ => None,
                };
                ReplayStep {
                    index,
                    config,
                    deletes,
                    // the first configuration costs two placements
                    moves_so_far: index + 2,
                }
            })
    }
}

#[cfg(test)]
mod replay_tests {
    use super::*;
    use jp_graph::generators;

    #[test]
    fn replay_steps_account_for_everything() {
        let g = generators::spider(3);
        let order: Vec<usize> = (0..g.edge_count()).collect();
        let s = PebblingScheme::from_edge_sequence(&g, &order).unwrap();
        let steps: Vec<ReplayStep> = s.replay(&g).collect();
        assert_eq!(steps.len(), s.len());
        let deletions = steps.iter().filter(|st| st.deletes.is_some()).count();
        assert_eq!(deletions, g.edge_count());
        assert_eq!(steps.last().unwrap().moves_so_far, s.cost());
        // deletion order matches the dedicated accessor
        let via_replay: Vec<Option<usize>> = steps.iter().map(|st| st.deletes).collect();
        assert_eq!(via_replay, s.deletion_order(&g));
    }

    #[test]
    fn replay_of_empty_scheme_is_empty() {
        let g = jp_graph::BipartiteGraph::new(1, 1, vec![]);
        let s = PebblingScheme::from_edge_sequence(&g, &[]).unwrap();
        assert_eq!(s.replay(&g).count(), 0);
    }
}

impl PebblingScheme {
    /// Compresses the scheme by deleting redundant configurations: a
    /// configuration may be dropped when it deletes no fresh edge and its
    /// neighbours are one pebble move apart (so the sequence stays
    /// canonical). Runs passes until a fixed point. The result is a valid
    /// scheme for the same graph with `cost() ≤` the original — a cheap
    /// post-optimizer for schemes implied by algorithm traces, which
    /// often park pebbles on already-joined tuples.
    pub fn compress(&self, g: &BipartiteGraph) -> PebblingScheme {
        let mut configs = self.configs.clone();
        loop {
            // which configs delete fresh edges in the current sequence
            let mut deleted = vec![false; g.edge_count()];
            let mut deletes: Vec<bool> = Vec::with_capacity(configs.len());
            for c in &configs {
                match edge_covered(g, c).and_then(|e| deleted.get_mut(e)) {
                    Some(slot) if !*slot => {
                        *slot = true;
                        deletes.push(true);
                    }
                    _ => deletes.push(false),
                }
            }
            let mut removed_any = false;
            let mut out: Vec<Config> = Vec::with_capacity(configs.len());
            for (i, (&c, &del)) in configs.iter().zip(&deletes).enumerate() {
                if !del {
                    let prev = out.last();
                    let next = configs.get(i + 1);
                    let removable = match (prev, next) {
                        // interior: neighbours must stay one move apart
                        (Some(p), Some(n)) => p.moves_to(n) == 1,
                        // trailing or leading non-deleting configs always go
                        _ => true,
                    };
                    if removable {
                        removed_any = true;
                        continue;
                    }
                }
                out.push(c);
            }
            configs = out;
            if !removed_any {
                break;
            }
        }
        PebblingScheme { configs }
    }
}

#[cfg(test)]
mod compress_tests {
    use super::*;
    use jp_graph::generators;

    #[test]
    fn compress_removes_redundant_revisits() {
        let g = generators::path(2); // edges (0,0), (1,0)
                                     // visit edge 0, edge 1, then pointlessly revisit edge 0
        let s = PebblingScheme::from_edge_sequence(&g, &[0, 1, 0]).unwrap();
        assert_eq!(s.len(), 3);
        let c = s.compress(&g);
        c.validate(&g).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.effective_cost(&g), 2); // now perfect
    }

    #[test]
    fn compress_never_breaks_validity_or_raises_cost() {
        for seed in 0..15 {
            let g = generators::random_connected_bipartite(4, 4, 9, seed);
            // a deliberately wasteful order: every edge twice
            let mut order: Vec<usize> = (0..g.edge_count()).collect();
            order.extend(0..g.edge_count());
            let s = PebblingScheme::from_edge_sequence(&g, &order).unwrap();
            let c = s.compress(&g);
            c.validate(&g).unwrap();
            assert!(c.cost() <= s.cost(), "seed {seed}");
            // compressing again changes nothing (fixed point)
            assert_eq!(c.compress(&g), c, "seed {seed}");
        }
    }

    #[test]
    fn compress_preserves_already_tight_schemes() {
        let g = generators::complete_bipartite(3, 3);
        let s = crate::approx::pebble_equijoin(&g).unwrap();
        let c = s.compress(&g);
        assert_eq!(c.cost(), s.cost());
    }
}
