//! The §5 open problem: optimal fragment mappings.
//!
//! "Many join algorithms in practice work by first mapping the input
//! relations `R` and `S` into `R₁ … R_m` and `S₁ … S_n`, and doing the
//! join by investigating a subset of the joins `R_i ⋈ S_j` … Here it is
//! natural to ask how hard it is to find the optimal mapping of the
//! tuples of `R` and `S` to the `R_i` and `S_j`. For the three classes of
//! joins we consider in this paper … this problem is NP-complete.
//! However, we conjecture that the problem for equijoins has good
//! approximation algorithms."
//!
//! Formalization implemented here: given the join graph `G = (R, S, E)`,
//! fragment counts `(p, q)` and per-fragment capacities, assign every
//! tuple to one fragment; fragment pair `(i, j)` must be *investigated*
//! if some joining tuple pair maps into it; minimize the number of
//! investigated pairs (each investigated pair is a sub-join that must be
//! scheduled — the parallelism / memory-pass cost of §5).
//!
//! * [`exact_min_investigated`] — brute force with fragment-symmetry
//!   pruning (tiny instances; the problem is NP-complete);
//! * [`component_pack`] — the equijoin-friendly heuristic behind the
//!   paper's conjecture: pack whole connected components into fragment
//!   pairs (components never straddle a sub-join unless capacity forces
//!   a split);
//! * [`local_search`] — tuple-relocation improvement for any mapping;
//! * [`connected_lower_bound`] — for a *connected* graph every pair of
//!   used fragments must be linked through investigated pairs, so at
//!   least `used_left + used_right − 1` sub-joins are unavoidable; with
//!   capacities this separates connected worst-case graphs (spiders,
//!   realizable only by containment/spatial joins) from equijoin graphs,
//!   which shatter into components (experiment E17).

use jp_graph::{BipartiteGraph, ComponentMap};
use std::collections::HashSet;

/// An assignment of tuples to fragments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FragmentMapping {
    /// Fragment id (`0..p`) per left tuple.
    pub left: Vec<u32>,
    /// Fragment id (`0..q`) per right tuple.
    pub right: Vec<u32>,
    /// Number of left fragments `p`.
    pub p: u32,
    /// Number of right fragments `q`.
    pub q: u32,
}

impl FragmentMapping {
    /// Validates shape and fragment-id ranges against a graph, plus the
    /// capacity constraints.
    pub fn validate(
        &self,
        g: &BipartiteGraph,
        cap_left: usize,
        cap_right: usize,
    ) -> Result<(), String> {
        if self.left.len() != g.left_count() as usize {
            return Err(format!(
                "left mapping has {} entries for {} tuples",
                self.left.len(),
                g.left_count()
            ));
        }
        if self.right.len() != g.right_count() as usize {
            return Err(format!(
                "right mapping has {} entries for {} tuples",
                self.right.len(),
                g.right_count()
            ));
        }
        let mut lcount = vec![0usize; self.p as usize];
        for &f in &self.left {
            let slot = lcount
                .get_mut(f as usize)
                .ok_or(format!("left fragment {f} ≥ p"))?;
            *slot += 1;
            if *slot > cap_left {
                return Err(format!("left fragment {f} exceeds capacity {cap_left}"));
            }
        }
        let mut rcount = vec![0usize; self.q as usize];
        for &f in &self.right {
            let slot = rcount
                .get_mut(f as usize)
                .ok_or(format!("right fragment {f} ≥ q"))?;
            *slot += 1;
            if *slot > cap_right {
                return Err(format!("right fragment {f} exceeds capacity {cap_right}"));
            }
        }
        Ok(())
    }

    /// The set of fragment pairs that must be investigated.
    pub fn investigated(&self, g: &BipartiteGraph) -> HashSet<(u32, u32)> {
        g.edges()
            .iter()
            .map(|&(l, r)| (self.left[l as usize], self.right[r as usize]))
            .collect()
    }

    /// The cost: number of investigated fragment pairs.
    pub fn cost(&self, g: &BipartiteGraph) -> usize {
        self.investigated(g).len()
    }
}

/// Default capacity: balanced fragments with one tuple of slack.
pub fn balanced_capacity(tuples: usize, fragments: u32) -> usize {
    tuples.div_ceil(fragments.max(1) as usize)
}

/// Exhaustive minimum over all capacity-respecting mappings, with
/// first-use symmetry canonicalization (tuple `t` may open fragment `k`
/// only if fragments `0..k` are already open). Exponential — intended
/// for graphs with at most ~8 tuples per side.
///
/// # Panics
/// Panics when the capacities admit no assignment at all
/// (`p·cap_left < |R|` or `q·cap_right < |S|`).
pub fn exact_min_investigated(
    g: &BipartiteGraph,
    p: u32,
    q: u32,
    cap_left: usize,
    cap_right: usize,
) -> (FragmentMapping, usize) {
    let nl = g.left_count() as usize;
    let nr = g.right_count() as usize;
    assert!(
        nl + nr <= 16,
        "exact fragmentation is exponential; keep it tiny"
    );
    let mut best: Option<(FragmentMapping, usize)> = None;
    let mut left = vec![0u32; nl];
    let mut right = vec![0u32; nr];

    #[allow(clippy::too_many_arguments)]
    fn rec(
        g: &BipartiteGraph,
        p: u32,
        q: u32,
        cap_left: usize,
        cap_right: usize,
        left: &mut Vec<u32>,
        right: &mut Vec<u32>,
        idx: usize,
        best: &mut Option<(FragmentMapping, usize)>,
    ) {
        let nl = left.len();
        let nr = right.len();
        if idx == nl + nr {
            let m = FragmentMapping {
                left: left.clone(),
                right: right.clone(),
                p,
                q,
            };
            if m.validate(g, cap_left, cap_right).is_ok() {
                let c = m.cost(g);
                if best.as_ref().is_none_or(|(_, bc)| c < *bc) {
                    *best = Some((m, c));
                }
            }
            return;
        }
        // canonical: next tuple may use fragments 0..=max_used+1
        let (assignments, used_max, frags): (&mut Vec<u32>, u32, u32) = if idx < nl {
            let used = left[..idx].iter().copied().max().map_or(0, |m| m + 1);
            (left, used, p)
        } else {
            let used = right[..idx - nl].iter().copied().max().map_or(0, |m| m + 1);
            (right, used, q)
        };
        let local = if idx < nl { idx } else { idx - nl };
        let limit = (used_max + 1).min(frags);
        let _ = assignments;
        for f in 0..limit {
            if idx < nl {
                left[local] = f;
            } else {
                right[local] = f;
            }
            rec(g, p, q, cap_left, cap_right, left, right, idx + 1, best);
        }
    }
    rec(
        g, p, q, cap_left, cap_right, &mut left, &mut right, 0, &mut best,
    );
    best.expect("some assignment exists (capacities must admit one)")
}

/// The component-packing heuristic: assign whole connected components to
/// fragment pairs, first-fit-decreasing by component size, splitting a
/// component across fragments only when capacity forces it. On equijoin
/// graphs (many small complete-bipartite components) this keeps each
/// component inside a single sub-join — the structure behind the paper's
/// conjecture that equijoin fragmentation approximates well.
///
/// ```
/// use jp_graph::generators;
/// use jp_pebble::fragmentation::component_pack;
///
/// // Four disjoint edges fit diagonally into a 2×2 fragment grid.
/// let g = generators::matching(4);
/// let m = component_pack(&g, 2, 2, 2, 2);
/// assert_eq!(m.cost(&g), 2); // two sub-joins instead of four
/// ```
pub fn component_pack(
    g: &BipartiteGraph,
    p: u32,
    q: u32,
    cap_left: usize,
    cap_right: usize,
) -> FragmentMapping {
    assert!(
        p as usize * cap_left >= g.left_count() as usize
            && q as usize * cap_right >= g.right_count() as usize,
        "capacities cannot hold the relations ({p}×{cap_left} / {q}×{cap_right} \
         for {}×{} tuples)",
        g.left_count(),
        g.right_count()
    );
    let cm = ComponentMap::new(g);
    let n_comp = cm.count as usize;
    // gather component members
    let mut comp_left: Vec<Vec<u32>> = vec![Vec::new(); n_comp];
    let mut comp_right: Vec<Vec<u32>> = vec![Vec::new(); n_comp];
    for (l, &c) in cm.left.iter().enumerate() {
        if c != u32::MAX {
            comp_left[c as usize].push(l as u32);
        }
    }
    for (r, &c) in cm.right.iter().enumerate() {
        if c != u32::MAX {
            comp_right[c as usize].push(r as u32);
        }
    }
    let mut order: Vec<usize> = (0..n_comp).collect();
    order.sort_by_key(|&c| std::cmp::Reverse(comp_left[c].len() + comp_right[c].len()));
    let mut lroom = vec![cap_left; p as usize];
    let mut rroom = vec![cap_right; q as usize];
    let mut left = vec![u32::MAX; g.left_count() as usize];
    let mut right = vec![u32::MAX; g.right_count() as usize];
    // round-robin fallback distributor for overflow / isolated tuples
    let spill = |room: &mut Vec<usize>| -> u32 {
        let (idx, slot) = room
            .iter_mut()
            .enumerate()
            .max_by_key(|(_, r)| **r)
            .expect("fragments exist");
        if *slot > 0 {
            *slot -= 1;
        }
        idx as u32
    };
    let mut used_pairs: HashSet<(u32, u32)> = HashSet::new();
    for c in order {
        // best-fit *pair*: among pairs with room for the whole component,
        // reuse an already-investigated pair when possible (new pairs are
        // the cost being minimized), then prefer the roomiest.
        let fit = (0..p as usize)
            .flat_map(|lf| (0..q as usize).map(move |rf| (lf, rf)))
            .filter(|&(lf, rf)| lroom[lf] >= comp_left[c].len() && rroom[rf] >= comp_right[c].len())
            .max_by_key(|&(lf, rf)| {
                (
                    used_pairs.contains(&(lf as u32, rf as u32)),
                    lroom[lf].min(rroom[rf]),
                )
            });
        match fit {
            Some((lf, rf)) => {
                used_pairs.insert((lf as u32, rf as u32));
                lroom[lf] -= comp_left[c].len();
                rroom[rf] -= comp_right[c].len();
                for &l in &comp_left[c] {
                    left[l as usize] = lf as u32;
                }
                for &r in &comp_right[c] {
                    right[r as usize] = rf as u32;
                }
            }
            None => {
                // split: chunk each side into as few fragments as
                // possible (a k×l complete-bipartite component split over
                // a×b fragments costs a·b sub-joins, so minimizing the
                // fragment counts per side minimizes the damage)
                chunk_assign(&comp_left[c], &mut lroom, &mut left);
                chunk_assign(&comp_right[c], &mut rroom, &mut right);
            }
        }
    }
    // isolated tuples
    for slot in left.iter_mut().filter(|s| **s == u32::MAX) {
        *slot = spill(&mut lroom);
    }
    for slot in right.iter_mut().filter(|s| **s == u32::MAX) {
        *slot = spill(&mut rroom);
    }
    FragmentMapping { left, right, p, q }
}

/// Assigns `members` to fragments using as few fragments as possible:
/// repeatedly fill the fragment with the most remaining room.
fn chunk_assign(members: &[u32], room: &mut [usize], assign: &mut [u32]) {
    let mut idx = 0;
    while idx < members.len() {
        let (frag, r) = room
            .iter_mut()
            .enumerate()
            .max_by_key(|(_, r)| **r)
            .expect("fragments exist");
        // feasibility is asserted by the callers, so room always remains
        let take = (*r).min(members.len() - idx);
        assert!(take > 0, "chunk_assign called with exhausted capacity");
        *r -= take;
        for &m in &members[idx..idx + take] {
            assign[m as usize] = frag as u32;
        }
        idx += take;
    }
}

/// Tuple-relocation local search: repeatedly move one tuple to another
/// fragment (capacity permitting) when that reduces the investigated-pair
/// count; first-improvement, bounded passes.
pub fn local_search(
    g: &BipartiteGraph,
    mut m: FragmentMapping,
    cap_left: usize,
    cap_right: usize,
    max_passes: usize,
) -> FragmentMapping {
    let mut lcount = vec![0usize; m.p as usize];
    for &f in &m.left {
        lcount[f as usize] += 1;
    }
    let mut rcount = vec![0usize; m.q as usize];
    for &f in &m.right {
        rcount[f as usize] += 1;
    }
    let mut cost = m.cost(g);
    for _ in 0..max_passes {
        let mut improved = false;
        for l in 0..m.left.len() {
            let cur = m.left[l];
            for f in 0..m.p {
                if f == cur || lcount[f as usize] >= cap_left {
                    continue;
                }
                m.left[l] = f;
                let c = m.cost(g);
                if c < cost {
                    cost = c;
                    lcount[cur as usize] -= 1;
                    lcount[f as usize] += 1;
                    improved = true;
                    break;
                }
                m.left[l] = cur;
            }
        }
        for r in 0..m.right.len() {
            let cur = m.right[r];
            for f in 0..m.q {
                if f == cur || rcount[f as usize] >= cap_right {
                    continue;
                }
                m.right[r] = f;
                let c = m.cost(g);
                if c < cost {
                    cost = c;
                    rcount[cur as usize] -= 1;
                    rcount[f as usize] += 1;
                    improved = true;
                    break;
                }
                m.right[r] = cur;
            }
        }
        if !improved {
            break;
        }
    }
    m
}

/// Lower bound for *connected* graphs: contract tuples to fragments; the
/// investigated pairs form a connected bipartite graph over the used
/// fragments, so `cost ≥ used_left + used_right − 1`, and capacities
/// force `used_left ≥ ⌈|R'|/cap⌉`, `used_right ≥ ⌈|S'|/cap⌉` (primed =
/// non-isolated tuples). Returns 0 for edgeless graphs; for disconnected
/// graphs apply per component and take the max (a valid but weaker
/// bound).
pub fn connected_lower_bound(g: &BipartiteGraph, cap_left: usize, cap_right: usize) -> usize {
    let cm = ComponentMap::new(g);
    if cm.count == 0 {
        return 0;
    }
    let mut best = 0usize;
    let mut lsize = vec![0usize; cm.count as usize];
    let mut rsize = vec![0usize; cm.count as usize];
    for &c in cm.left.iter().filter(|&&c| c != u32::MAX) {
        lsize[c as usize] += 1;
    }
    for &c in cm.right.iter().filter(|&&c| c != u32::MAX) {
        rsize[c as usize] += 1;
    }
    for c in 0..cm.count as usize {
        let ul = lsize[c].div_ceil(cap_left.max(1));
        let ur = rsize[c].div_ceil(cap_right.max(1));
        best = best.max(ul + ur - 1);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use jp_graph::generators;

    #[test]
    fn cost_counts_distinct_pairs() {
        let g = generators::matching(4);
        // everything in one fragment pair
        let m = FragmentMapping {
            left: vec![0; 4],
            right: vec![0; 4],
            p: 2,
            q: 2,
        };
        assert_eq!(m.cost(&g), 1);
        // diagonal split
        let m = FragmentMapping {
            left: vec![0, 0, 1, 1],
            right: vec![0, 0, 1, 1],
            p: 2,
            q: 2,
        };
        assert_eq!(m.cost(&g), 2);
        // anti-diagonal: same count, different pairs
        let m = FragmentMapping {
            left: vec![0, 1, 0, 1],
            right: vec![0, 1, 0, 1],
            p: 2,
            q: 2,
        };
        assert_eq!(m.cost(&g), 2);
    }

    #[test]
    fn validate_checks_shape_and_capacity() {
        let g = generators::matching(3);
        let m = FragmentMapping {
            left: vec![0, 0, 0],
            right: vec![0, 0, 0],
            p: 1,
            q: 1,
        };
        assert!(m.validate(&g, 3, 3).is_ok());
        assert!(m.validate(&g, 2, 3).is_err(), "capacity violated");
        let bad = FragmentMapping {
            left: vec![0, 0],
            right: vec![0, 0, 0],
            p: 1,
            q: 1,
        };
        assert!(bad.validate(&g, 3, 3).is_err(), "shape mismatch");
        let oob = FragmentMapping {
            left: vec![5, 0, 0],
            right: vec![0, 0, 0],
            p: 1,
            q: 1,
        };
        assert!(oob.validate(&g, 3, 3).is_err(), "fragment id out of range");
    }

    #[test]
    fn exact_on_matching_achieves_diagonal() {
        // 4 independent edges into a 2×2 fragment grid with capacity 2:
        // optimal packs two edges per diagonal pair: cost 2.
        let g = generators::matching(4);
        let (m, c) = exact_min_investigated(&g, 2, 2, 2, 2);
        assert_eq!(c, 2);
        m.validate(&g, 2, 2).unwrap();
        assert_eq!(m.cost(&g), 2);
    }

    #[test]
    fn exact_on_connected_graph_matches_lower_bound() {
        // spider G_3: connected, 4 left (c,w1..w3) and 3 right tuples.
        // p = q = 2, caps force both left fragments and both right
        // fragments in use: cost ≥ 2 + 2 − 1 = 3.
        let g = generators::spider(3);
        let (_, c) = exact_min_investigated(&g, 2, 2, 2, 2);
        assert!(c >= connected_lower_bound(&g, 2, 2));
        assert_eq!(connected_lower_bound(&g, 2, 2), 3);
        assert_eq!(c, 3);
    }

    #[test]
    fn component_pack_is_valid_and_good_on_equijoin_graphs() {
        // 4 components of K_{2,2}: 8 left, 8 right tuples; 2×2 grid with
        // capacity 4 per fragment → two components per diagonal pair.
        let unit = generators::complete_bipartite(2, 2);
        let g = unit
            .disjoint_union(&unit)
            .disjoint_union(&unit)
            .disjoint_union(&unit);
        let m = component_pack(&g, 2, 2, 4, 4);
        m.validate(&g, 4, 4).unwrap();
        assert!(
            m.cost(&g) <= 3,
            "components should pack, got {}",
            m.cost(&g)
        );
        // connected-graph bound does not apply per whole graph: per
        // component it is 1.
        assert_eq!(connected_lower_bound(&g, 4, 4), 1);
    }

    #[test]
    fn component_pack_splits_when_forced() {
        // one K_{3,3} with capacity 2: must split
        let g = generators::complete_bipartite(3, 3);
        let m = component_pack(&g, 2, 2, 2, 2);
        m.validate(&g, 2, 2).unwrap();
        // all four fragment pairs become sub-joins for a split clique
        assert_eq!(m.cost(&g), 4);
    }

    #[test]
    fn local_search_never_worsens() {
        for seed in 0..10 {
            let g = generators::random_bipartite(6, 6, 0.3, seed);
            let cap = 3;
            let m0 = component_pack(&g, 2, 2, cap, cap);
            let before = m0.cost(&g);
            let m1 = local_search(&g, m0, cap, cap, 5);
            m1.validate(&g, cap, cap).unwrap();
            assert!(m1.cost(&g) <= before, "seed {seed}");
        }
    }

    #[test]
    fn equijoin_vs_worst_case_separation() {
        // The E17 story in miniature: an equijoin graph (4 matching
        // edges) needs 2 sub-joins on a 2×2 grid; the connected G_3
        // (containment/spatial-only) needs 3.
        let eq = generators::matching(4);
        let (_, c_eq) = exact_min_investigated(&eq, 2, 2, 2, 2);
        let worst = generators::spider(3);
        let (_, c_w) = exact_min_investigated(&worst, 2, 2, 2, 2);
        assert!(c_eq < c_w, "equijoin {c_eq} vs worst case {c_w}");
    }
}
