//! The linear-time perfect pebbler for equijoin join graphs
//! (Lemma 3.2, Theorem 3.2, Theorem 4.1).
//!
//! Every connected component of an equijoin join graph is a complete
//! bipartite graph `K_{k,l}`, and `K_{k,l}` pebbles perfectly with the
//! boustrophedon sequence
//! `(u1,v1),(u1,v2),…,(u1,vl),(u2,vl),(u2,v(l−1)),…` — "similar to the
//! merge phase of sort-merge join" (the paper's remark after
//! Theorem 4.1). The whole pebbler runs in `O(|V| + |E|)`:
//! component detection is one BFS, the completeness check is arithmetic
//! (`m_c = k_c · l_c`), and the sweep emits each edge once, locating edge
//! ids through the sorted edge list's per-left-vertex contiguity rather
//! than by search.

use crate::scheme::PebblingScheme;
use crate::PebbleError;
use jp_graph::{BipartiteGraph, ComponentMap};

/// Pebbles an equijoin join graph perfectly: the returned scheme has
/// `π(P) = m` (and `π̂(P) = m + β₀`). Errors with
/// [`PebbleError::NotEquijoinGraph`] if some component is not complete
/// bipartite — by Theorem 3.2's characterization such a graph cannot come
/// from an equijoin.
///
/// ```
/// use jp_graph::generators;
/// use jp_pebble::approx::pebble_equijoin;
///
/// let g = generators::complete_bipartite(4, 6);
/// let scheme = pebble_equijoin(&g).unwrap();
/// assert_eq!(scheme.effective_cost(&g), 24); // π = m: perfect
///
/// // Non-equijoin graphs are rejected:
/// assert!(pebble_equijoin(&generators::spider(3)).is_err());
/// ```
pub fn pebble_equijoin(g: &BipartiteGraph) -> Result<PebblingScheme, PebbleError> {
    let _span = jp_obs::span("approx.equijoin", "pebble");
    let cm = ComponentMap::new(g);
    let n_comp = cm.count as usize;
    jp_obs::counter("approx.equijoin", "components", n_comp as u64);
    jp_obs::counter("approx.equijoin", "edges", g.edge_count() as u64);
    // Component population counts (completeness check is m_c == k_c·l_c).
    let mut lefts = vec![0usize; n_comp];
    let mut rights = vec![0usize; n_comp];
    let mut edges = vec![0usize; n_comp];
    for &c in &cm.left {
        if c != u32::MAX {
            // audit:allow(panic-freedom) component ids are < n_comp == lefts.len()
            lefts[c as usize] += 1;
        }
    }
    for &c in &cm.right {
        if c != u32::MAX {
            // audit:allow(panic-freedom) component ids are < n_comp == rights.len()
            rights[c as usize] += 1;
        }
    }
    for &c in &cm.edge {
        // audit:allow(panic-freedom) component ids are < n_comp == edges.len()
        edges[c as usize] += 1;
    }
    // audit:allow(panic-freedom) c ranges over 0..n_comp, the length of all three vectors
    if (0..n_comp).any(|c| edges[c] != lefts[c] * rights[c]) {
        return Err(PebbleError::NotEquijoinGraph);
    }
    // Edge ids of left vertex `l` occupy the contiguous range
    // offset[l] .. offset[l] + deg(l) in the sorted edge list, ordered by
    // ascending right endpoint. The boustrophedon per component walks its
    // left vertices (in index order) alternating sweep direction.
    let mut offset = vec![0usize; g.left_count() as usize + 1];
    for l in 0..g.left_count() as usize {
        // audit:allow(panic-freedom) offset has left_count+1 slots; l < left_count
        offset[l + 1] = offset[l] + g.left_neighbors(l as u32).len();
    }
    // Left vertices grouped by component, preserving index order.
    let mut comp_lefts: Vec<Vec<u32>> = vec![Vec::new(); n_comp];
    for (l, &c) in cm.left.iter().enumerate() {
        if c != u32::MAX {
            // audit:allow(panic-freedom) component ids are < n_comp == comp_lefts.len()
            comp_lefts[c as usize].push(l as u32);
        }
    }
    let mut order: Vec<usize> = Vec::with_capacity(g.edge_count());
    for ls in comp_lefts {
        for (step, &l) in ls.iter().enumerate() {
            // audit:allow(panic-freedom) l is a left-vertex id; offset has left_count+1 slots
            let range = offset[l as usize]..offset[l as usize + 1];
            if step % 2 == 0 {
                order.extend(range);
            } else {
                order.extend(range.rev());
            }
        }
    }
    let scheme = PebblingScheme::from_edge_sequence(g, &order)?;
    debug_assert_eq!(scheme.effective_cost(g), g.edge_count());
    // Theorem 4.1's pebbler is perfect whenever it succeeds.
    jp_obs::counter("approx.equijoin", "jumps", 0);
    Ok(scheme)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jp_graph::generators;

    #[test]
    fn complete_bipartite_is_perfect() {
        for (k, l) in [(1, 1), (1, 5), (3, 4), (4, 4), (7, 2)] {
            let g = generators::complete_bipartite(k, l);
            let s = pebble_equijoin(&g).unwrap();
            s.validate(&g).unwrap();
            assert_eq!(s.effective_cost(&g), g.edge_count(), "K_{{{k},{l}}}");
            assert_eq!(s.jumps(&g), 0, "no jumps inside one component");
        }
    }

    #[test]
    fn unions_pebble_perfectly() {
        // CLAIM(L3.2, T3.2)
        // Theorem 3.2: π(G) = m for any equijoin graph.
        let g = generators::complete_bipartite(2, 5)
            .disjoint_union(&generators::matching(4))
            .disjoint_union(&generators::complete_bipartite(3, 3));
        let s = pebble_equijoin(&g).unwrap();
        s.validate(&g).unwrap();
        assert_eq!(s.effective_cost(&g), g.edge_count());
        // π̂ = m + β₀
        assert_eq!(
            s.cost(),
            g.edge_count() + jp_graph::betti_number(&g) as usize
        );
    }

    #[test]
    fn isolated_vertices_are_harmless() {
        let g = jp_graph::BipartiteGraph::new(4, 4, vec![(0, 0), (0, 1), (3, 0), (3, 1)]);
        let s = pebble_equijoin(&g).unwrap();
        s.validate(&g).unwrap();
        assert_eq!(s.effective_cost(&g), 4);
    }

    #[test]
    fn rejects_non_equijoin_graphs() {
        for g in [
            generators::path(3),
            generators::spider(3),
            generators::cycle(3),
        ] {
            assert_eq!(
                pebble_equijoin(&g).unwrap_err(),
                PebbleError::NotEquijoinGraph,
                "{g}"
            );
        }
    }

    #[test]
    fn empty_graph() {
        let g = jp_graph::BipartiteGraph::new(1, 1, vec![]);
        let s = pebble_equijoin(&g).unwrap();
        assert_eq!(s.cost(), 0);
    }

    #[test]
    fn matches_exact_solver() {
        // CLAIM(T4.1)
        // Theorem 4.1: linear-time result equals the optimum.
        use crate::exact::optimal_effective_cost;
        let g = generators::complete_bipartite(2, 4)
            .disjoint_union(&generators::complete_bipartite(1, 3));
        let s = pebble_equijoin(&g).unwrap();
        assert_eq!(s.effective_cost(&g), optimal_effective_cost(&g).unwrap());
    }

    #[test]
    fn real_equijoin_workload_end_to_end() {
        use jp_relalg::{equijoin_graph, workload};
        let (r, s) = workload::zipf_equijoin(60, 60, 12, 0.8, 5);
        let g = equijoin_graph(&r, &s).unwrap();
        let scheme = pebble_equijoin(&g).unwrap();
        scheme.validate(&g).unwrap();
        assert_eq!(scheme.effective_cost(&g), g.edge_count());
    }
}
