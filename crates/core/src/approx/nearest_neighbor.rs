//! Nearest-neighbour tour construction on the completed line graph.
//!
//! The simplest TSP(1,2) heuristic: start anywhere, always follow a good
//! (weight-1) edge to an unvisited node when one exists, jump otherwise.
//! No approximation guarantee below 1.5 in general, but fast
//! (`O(|L(G)|)` amortized) and a useful ablation baseline against the
//! guaranteed constructions.

use crate::approx::per_component_scheme;
use crate::scheme::PebblingScheme;
use crate::PebbleError;
use jp_graph::{BipartiteGraph, Graph};

/// Pebbles via a nearest-neighbour tour of each component's line graph.
// audit:allow(obs-coverage) thin wrapper — per_component_scheme opens the approx.nn span
pub fn pebble_nearest_neighbor(g: &BipartiteGraph) -> Result<PebblingScheme, PebbleError> {
    per_component_scheme(g, "approx.nn", nearest_neighbor_tour)
}

/// Nearest-neighbour tour over the weight-1 graph: greedy good-edge steps
/// with lowest-degree tie-breaking (saving high-degree vertices for
/// later), jumping to the lowest-indexed unvisited node when stuck.
// audit:allow(obs-coverage) tour worker — the per_component_scheme driver opens the span
pub fn nearest_neighbor_tour(lg: &Graph) -> Vec<u32> {
    let n = lg.vertex_count() as usize;
    if n == 0 {
        return Vec::new();
    }
    let mut visited = vec![false; n];
    // Start from a minimum-degree vertex: endpoints of sparse structures
    // are the worst places to strand.
    let start = (0..n as u32).min_by_key(|&v| lg.degree(v)).unwrap_or(0);
    let mut tour = Vec::with_capacity(n);
    let mut cur = start;
    // audit:allow(panic-freedom) vertex ids are < n == visited.len() by construction
    visited[cur as usize] = true;
    tour.push(cur);
    let mut next_unvisited = 0usize;
    while tour.len() < n {
        let next_good = lg
            .neighbors(cur)
            .iter()
            .copied()
            // audit:allow(panic-freedom) vertex ids are < n == visited.len() by construction
            .filter(|&w| !visited[w as usize])
            .min_by_key(|&w| lg.degree(w));
        let next = match next_good {
            Some(w) => w,
            None => {
                while visited.get(next_unvisited).copied().unwrap_or(false) {
                    next_unvisited += 1;
                }
                next_unvisited as u32
            }
        };
        // audit:allow(panic-freedom) tour.len() < n guarantees an unvisited vertex < n exists
        visited[next as usize] = true;
        tour.push(next);
        cur = next;
    }
    tour
}

#[cfg(test)]
mod tests {
    use super::*;
    use jp_graph::{generators, line_graph};

    #[test]
    fn tour_is_a_permutation() {
        let g = generators::spider(5);
        let lg = line_graph(&g);
        let tour = nearest_neighbor_tour(&lg);
        let mut sorted = tour.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..lg.vertex_count()).collect::<Vec<_>>());
    }

    #[test]
    fn perfect_on_stars_and_paths() {
        for g in [generators::star(8), generators::path(9)] {
            let s = pebble_nearest_neighbor(&g).unwrap();
            s.validate(&g).unwrap();
            assert_eq!(s.effective_cost(&g), g.edge_count(), "{g}");
        }
    }

    #[test]
    fn valid_on_random_graphs_with_sane_cost() {
        // CLAIM(C2.1)
        for seed in 0..20 {
            let g = generators::random_connected_bipartite(5, 5, 13, seed);
            let s = pebble_nearest_neighbor(&g).unwrap();
            s.validate(&g).unwrap();
            let m = g.edge_count();
            assert!(s.effective_cost(&g) >= m);
            assert!(
                s.effective_cost(&g) < 2 * m,
                "Corollary 2.1 range, seed {seed}"
            );
        }
    }

    #[test]
    fn handles_disconnected_input() {
        let g = generators::matching(3).disjoint_union(&generators::spider(3));
        let s = pebble_nearest_neighbor(&g).unwrap();
        s.validate(&g).unwrap();
    }

    #[test]
    fn empty_graph() {
        let g = jp_graph::BipartiteGraph::new(1, 1, vec![]);
        assert_eq!(pebble_nearest_neighbor(&g).unwrap().cost(), 0);
    }
}
