//! 2-opt local search on TSP(1,2) tours.
//!
//! The paper notes that "with more work, one can approximate better" than
//! 1.25 (citing the 7/6 algorithm of Papadimitriou–Yannakakis). 2-opt is
//! the workhorse improvement step: replace tour edges `(t[i−1], t[i])`
//! and `(t[j], t[j+1])` by `(t[i−1], t[j])` and `(t[i], t[j+1])`
//! (reversing the middle) whenever that removes a jump. With weights in
//! `{1, 2}` a move helps iff it converts at least one bad step to good
//! without creating more bad ones than it removes.

use crate::tsp::Tsp12;

/// Improves `tour` in place by first-improvement 2-opt passes until no
/// improving move exists or `max_passes` is exhausted. Returns the number
/// of jumps removed.
pub fn improve_two_opt(tsp: &Tsp12, tour: &mut [u32], max_passes: usize) -> usize {
    let n = tour.len();
    if n < 3 {
        return 0;
    }
    let _span = jp_obs::span("approx.two_opt", "improve");
    let start_jumps = tsp.tour_jumps(tour);
    let mut improved_any = true;
    let mut passes = 0;
    let mut moves: u64 = 0;
    while improved_any && passes < max_passes {
        improved_any = false;
        passes += 1;
        // consider cutting after position i-1 and after j (reverse i..=j)
        for i in 1..n - 1 {
            for j in i + 1..n {
                // audit:allow(panic-freedom) 1 <= i < j < n == tour.len()
                let (prev, head, tail) = (tour[i - 1], tour[i], tour[j]);
                let next = tour.get(j + 1).copied();
                let before = tsp.weight(prev, head) + next.map_or(0, |x| tsp.weight(tail, x));
                let after = tsp.weight(prev, tail) + next.map_or(0, |x| tsp.weight(head, x));
                if after < before {
                    // audit:allow(panic-freedom) 1 <= i < j < n == tour.len()
                    tour[i..=j].reverse();
                    improved_any = true;
                    moves += 1;
                }
            }
        }
    }
    let removed = start_jumps - tsp.tour_jumps(tour);
    if jp_obs::enabled() {
        jp_obs::counter("approx.two_opt", "passes", passes as u64);
        jp_obs::counter("approx.two_opt", "improving_moves", moves);
        jp_obs::counter("approx.two_opt", "jumps_removed", removed as u64);
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::nearest_neighbor::nearest_neighbor_tour;
    use jp_graph::{generators, line_graph, Graph};

    #[test]
    fn fixes_an_obvious_bad_tour() {
        // L = path 0-1-2-3; tour [0,2,1,3] has 3 jumps... (0,2) bad, (2,1)
        // good, (1,3) bad. 2-opt should reach the perfect tour.
        let lg = Graph::new(4, vec![(0, 1), (1, 2), (2, 3)]);
        let tsp = Tsp12::new(lg);
        let mut tour = vec![0, 2, 1, 3];
        let removed = improve_two_opt(&tsp, &mut tour, 10);
        assert!(removed >= 1);
        assert_eq!(tsp.tour_jumps(&tour), 0);
    }

    #[test]
    fn never_worsens() {
        for seed in 0..20 {
            let g = generators::random_connected_bipartite(5, 5, 13, seed);
            let lg = line_graph(&g);
            let tsp = Tsp12::new(lg.clone());
            let mut tour = nearest_neighbor_tour(&lg);
            let before = tsp.tour_cost(&tour);
            improve_two_opt(&tsp, &mut tour, 5);
            assert!(tsp.is_valid_tour(&tour), "seed {seed}");
            assert!(tsp.tour_cost(&tour) <= before, "seed {seed}");
        }
    }

    #[test]
    fn reaches_optimum_on_small_instances() {
        use crate::exact::min_jump_tour;
        let mut optimal_hits = 0;
        for seed in 0..10 {
            let g = generators::random_connected_bipartite(4, 4, 9, seed);
            let lg = line_graph(&g);
            let (_, opt_jumps) = min_jump_tour(&lg);
            let tsp = Tsp12::new(lg.clone());
            let mut tour = nearest_neighbor_tour(&lg);
            improve_two_opt(&tsp, &mut tour, 20);
            if tsp.tour_jumps(&tour) == opt_jumps {
                optimal_hits += 1;
            }
            assert!(tsp.tour_jumps(&tour) >= opt_jumps);
        }
        assert!(
            optimal_hits >= 6,
            "2-opt should usually reach optimum, got {optimal_hits}/10"
        );
    }

    #[test]
    fn tiny_tours_untouched() {
        let tsp = Tsp12::new(Graph::new(2, vec![(0, 1)]));
        let mut tour = vec![1, 0];
        assert_eq!(improve_two_opt(&tsp, &mut tour, 5), 0);
        assert_eq!(tour, vec![1, 0]);
    }
}
