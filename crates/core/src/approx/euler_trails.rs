//! Linear-time trail-decomposition pebbler.
//!
//! Lemma 3.1 promises a linear-time pebbling within `1.25m`; the paper
//! omits its construction. This module provides the crate's *linear-time*
//! practical pebbler, built directly on `G` (never materializing `L(G)`):
//!
//! 1. pair up odd-degree vertices with virtual edges (Euler's theorem: a
//!    connected graph with `2k` odd vertices decomposes into `max(1, k)`
//!    edge-disjoint trails);
//! 2. find an Euler circuit of the augmented graph with Hierholzer's
//!    algorithm and split it at the virtual edges into trails;
//! 3. a trail is a walk whose consecutive edges share a vertex — i.e. a
//!    path in `L(G)` — so stitching the trails yields a tour with at most
//!    `#trails − 1` jumps.
//!
//! The jump count is bounded by the odd-vertex count, not by `m/4`, so
//! this pebbler trades the 1.25 guarantee of
//! [`crate::approx::dfs_partition`] for near-linear time: the
//! decomposition is `O(|V| + |E|)` and the greedy stitch adds `O(t²)`
//! endpoint comparisons over the `t = max(1, odd/2)` trails (t is small
//! for the low-odd-degree graphs this pebbler targets; a worst-case
//! matching degenerates to `t = m`). Experiments (E5) compare the two.

use crate::scheme::PebblingScheme;
use crate::PebbleError;
use jp_graph::{BipartiteGraph, ComponentMap};

/// Pebbles via Euler-trail decomposition, per component, in near-linear
/// time (see the module docs for the trail-stitching caveat).
pub fn pebble_euler_trails(g: &BipartiteGraph) -> Result<PebblingScheme, PebbleError> {
    let _span = jp_obs::span("approx.euler_trails", "pebble");
    let cm = ComponentMap::new(g);
    jp_obs::counter("approx.euler_trails", "components", u64::from(cm.count));
    jp_obs::counter("approx.euler_trails", "edges", g.edge_count() as u64);
    let mut order: Vec<usize> = Vec::with_capacity(g.edge_count());
    let mut n_trails: u64 = 0;
    for edges in cm.edges_by_component() {
        let sub = g.edge_subgraph(&edges);
        let trails = trail_decomposition(&sub);
        n_trails += trails.len() as u64;
        let tour = stitch_trails(&sub, trails);
        // audit:allow(panic-freedom) trail edges are subgraph edge ids 0..edges.len()
        order.extend(tour.iter().map(|&e| edges[e as usize]));
    }
    jp_obs::counter("approx.euler_trails", "trails", n_trails);
    PebblingScheme::from_edge_sequence(g, &order)
}

/// Stitches trails into one edge order, preferring a next trail whose
/// first (or last) edge shares a vertex with the current tail edge —
/// checked directly on edge coordinates, so `L(G)` is never built.
fn stitch_trails(g: &BipartiteGraph, mut trails: Vec<Vec<u32>>) -> Vec<u32> {
    let share = |e1: u32, e2: u32| -> bool {
        match (g.edges().get(e1 as usize), g.edges().get(e2 as usize)) {
            (Some(&(l1, r1)), Some(&(l2, r2))) => l1 == l2 || r1 == r2,
            _ => false,
        }
    };
    let mut tour: Vec<u32> = Vec::new();
    if trails.is_empty() {
        return tour;
    }
    tour.append(&mut trails.remove(0));
    while !trails.is_empty() {
        let mut chosen = None;
        if let Some(&tail) = tour.last() {
            for (i, t) in trails.iter().enumerate() {
                let (Some(&head), Some(&last)) = (t.first(), t.last()) else {
                    continue;
                };
                if share(tail, head) {
                    chosen = Some((i, false));
                    break;
                }
                if share(tail, last) {
                    chosen = Some((i, true));
                    break;
                }
            }
        }
        let (i, rev) = chosen.unwrap_or((0, false));
        let mut t = trails.remove(i);
        if rev {
            t.reverse();
        }
        tour.append(&mut t);
    }
    tour
}

/// Decomposes a connected bipartite graph's edges into `max(1, k)`
/// edge-disjoint trails (`k` = half the odd-degree vertex count),
/// returned as sequences of edge ids (paths in the line graph).
// audit:allow(obs-coverage) decomposition worker — pebble_euler_trails opens the span
pub fn trail_decomposition(g: &BipartiteGraph) -> Vec<Vec<u32>> {
    let m = g.edge_count();
    if m == 0 {
        return Vec::new();
    }
    let nv = g.vertex_count() as usize;
    // Build a multigraph adjacency of (flat_target, edge_id); virtual
    // pairing edges get ids >= m.
    let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); nv];
    for (e, &(l, r)) in g.edges().iter().enumerate() {
        let fl = l as usize;
        let fr = g.left_count() as usize + r as usize;
        // audit:allow(panic-freedom) flat ids are < left+right = nv = adj.len() for in-range edges
        adj[fl].push((fr as u32, e as u32));
        // audit:allow(panic-freedom) flat ids are < left+right = nv = adj.len() for in-range edges
        adj[fr].push((fl as u32, e as u32));
    }
    // audit:allow(panic-freedom) v ranges over 0..nv == adj.len()
    let odd: Vec<usize> = (0..nv).filter(|&v| adj[v].len() % 2 == 1).collect();
    debug_assert!(odd.len().is_multiple_of(2));
    let mut next_virtual = m as u32;
    for pair in odd.chunks(2) {
        let [a, b] = pair else { continue }; // odd count is even: chunks are exact pairs
        let (a, b) = (*a, *b);
        // audit:allow(panic-freedom) odd vertices are indices < nv == adj.len()
        adj[a].push((b as u32, next_virtual));
        // audit:allow(panic-freedom) odd vertices are indices < nv == adj.len()
        adj[b].push((a as u32, next_virtual));
        next_virtual += 1;
    }
    // If everything was even, the circuit never closes without a start
    // marker; we split at virtual edges, so with zero virtual edges the
    // whole circuit is one trail.
    // Hierholzer from any non-isolated vertex.
    // audit:allow(panic-freedom) v ranges over 0..nv == adj.len()
    let Some(start) = (0..nv).find(|&v| !adj[v].is_empty()) else {
        return Vec::new(); // unreachable: m > 0 means some vertex has an edge
    };
    let mut used = vec![false; next_virtual as usize];
    let mut iter_pos = vec![0usize; nv];
    let mut stack: Vec<(usize, u32)> = vec![(start, u32::MAX)]; // (vertex, incoming edge)
    let mut circuit: Vec<u32> = Vec::with_capacity(next_virtual as usize); // edge ids in order
    while let Some(&(v, _)) = stack.last() {
        let mut advanced = false;
        // audit:allow(panic-freedom) stack holds vertices < nv == iter_pos.len() == adj.len()
        while iter_pos[v] < adj[v].len() {
            // audit:allow(panic-freedom) loop condition bounds iter_pos[v] within adj[v]
            let (w, e) = adj[v][iter_pos[v]];
            // audit:allow(panic-freedom) stack holds vertices < nv == iter_pos.len()
            iter_pos[v] += 1;
            // audit:allow(panic-freedom) edge ids (real and virtual) are < next_virtual == used.len()
            if !used[e as usize] {
                // audit:allow(panic-freedom) edge ids (real and virtual) are < next_virtual == used.len()
                used[e as usize] = true;
                stack.push((w as usize, e));
                advanced = true;
                break;
            }
        }
        if !advanced {
            if let Some((_, incoming)) = stack.pop() {
                if incoming != u32::MAX {
                    circuit.push(incoming);
                }
            }
        }
    }
    debug_assert_eq!(
        circuit.len(),
        next_virtual as usize,
        "graph must be connected"
    );
    // Split the circuit at virtual edges. The circuit is circular, so
    // rotate it to start at a virtual edge first — then no fragment wraps
    // around the list boundary.
    if next_virtual as usize == m {
        // Eulerian graph: the whole circuit is one trail.
        return vec![circuit];
    }
    let Some(pos) = circuit.iter().position(|&e| e >= m as u32) else {
        return vec![circuit]; // unreachable: next_virtual > m puts a virtual edge in the circuit
    };
    circuit.rotate_left(pos);
    let mut trails: Vec<Vec<u32>> = Vec::new();
    let mut cur: Vec<u32> = Vec::new();
    for &e in &circuit {
        if e >= m as u32 {
            if !cur.is_empty() {
                trails.push(std::mem::take(&mut cur));
            }
        } else {
            cur.push(e);
        }
    }
    if !cur.is_empty() {
        trails.push(cur);
    }
    trails
}

#[cfg(test)]
mod tests {
    use super::*;
    use jp_graph::{generators, line_graph};

    fn check_trails(g: &BipartiteGraph) {
        let trails = trail_decomposition(g);
        let lg = line_graph(g);
        let mut seen = vec![false; g.edge_count()];
        for t in &trails {
            for w in t.windows(2) {
                assert!(lg.has_edge(w[0], w[1]), "trail edges must chain in L(G)");
            }
            for &e in t {
                assert!(!seen[e as usize], "edge {e} reused");
                seen[e as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "all edges covered");
        // Euler bound on trail count
        let odd = g.vertices().filter(|&v| g.degree(v) % 2 == 1).count();
        assert!(
            trails.len() <= (odd / 2).max(1),
            "trail count exceeds Euler bound"
        );
    }

    #[test]
    fn trail_invariants_on_families() {
        for g in [
            generators::path(7),
            generators::cycle(4),
            generators::star(6),
            generators::spider(5),
            generators::complete_bipartite(3, 4),
            generators::complete_bipartite(2, 2),
        ] {
            check_trails(&g);
        }
    }

    #[test]
    fn trail_invariants_on_random_graphs() {
        for seed in 0..25 {
            let g = generators::random_connected_bipartite(6, 6, 17, seed);
            check_trails(&g);
        }
    }

    #[test]
    fn even_graph_single_trail() {
        // cycles are Eulerian: one trail covering everything
        let g = generators::cycle(5);
        let trails = trail_decomposition(&g);
        assert_eq!(trails.len(), 1);
        assert_eq!(trails[0].len(), 10);
    }

    #[test]
    fn scheme_is_valid_and_linearly_bounded() {
        // CLAIM(L3.1): near-linear-time pebbler within the trail bound
        for seed in 0..15 {
            let g = generators::random_connected_bipartite(7, 7, 20, seed);
            let s = pebble_euler_trails(&g).unwrap();
            s.validate(&g).unwrap();
            let m = g.edge_count();
            let odd = g.vertices().filter(|&v| g.degree(v) % 2 == 1).count();
            assert!(
                s.effective_cost(&g) <= m + (odd / 2).max(1) - 1 + 1,
                "cost bounded by trails, seed {seed}"
            );
        }
    }

    #[test]
    fn spider_cost_hits_the_optimal_shape() {
        // On spiders the trail decomposition naturally pairs legs:
        // cost should be within 1 of optimum.
        use crate::exact::optimal_effective_cost;
        for n in [4u32, 6] {
            let g = generators::spider(n);
            let s = pebble_euler_trails(&g).unwrap();
            let opt = optimal_effective_cost(&g).unwrap();
            assert!(s.effective_cost(&g) <= opt + 1, "G_{n}");
        }
    }

    #[test]
    fn disconnected_and_empty() {
        let g = generators::matching(3);
        let s = pebble_euler_trails(&g).unwrap();
        s.validate(&g).unwrap();
        assert_eq!(s.cost(), 6);
        let e = jp_graph::BipartiteGraph::new(1, 1, vec![]);
        assert_eq!(pebble_euler_trails(&e).unwrap().cost(), 0);
    }
}
