//! Greedy path-cover heuristic for TSP(1,2) on the line graph.
//!
//! The classical matching-flavoured TSP(1,2) approach (the
//! Papadimitriou–Yannakakis 7/6 algorithm builds a maximum path cover via
//! matchings; this is its standard greedy sibling): greedily select good
//! edges that keep the selection a disjoint union of paths, then stitch
//! the paths. The tour's jumps equal `#paths − 1 ≤` (uncovered degree
//! slack), which in practice lands well below the 1.25 construction.

use crate::approx::{per_component_scheme, stitch_paths};
use crate::scheme::PebblingScheme;
use crate::PebbleError;
use jp_graph::{BipartiteGraph, Graph};

/// Pebbles via a greedy path cover of each component's line graph.
// audit:allow(obs-coverage) thin wrapper — per_component_scheme opens the approx.path_cover span
pub fn pebble_path_cover(g: &BipartiteGraph) -> Result<PebblingScheme, PebbleError> {
    per_component_scheme(g, "approx.path_cover", |lg| {
        let paths = greedy_path_cover(lg);
        jp_obs::counter("approx.path_cover", "paths", paths.len() as u64);
        stitch_paths(lg, paths)
    })
}

/// Greedily covers the vertices of `lg` with vertex-disjoint paths using
/// only good edges: an edge joins the cover when both endpoints still
/// have degree < 2 in the cover and lie on different paths. Edges are
/// scanned in ascending endpoint-degree order so scarce connections are
/// claimed first. Returns the paths (isolated vertices become length-1
/// paths).
// audit:allow(obs-coverage) cover worker — pebble_path_cover opens the span
pub fn greedy_path_cover(lg: &Graph) -> Vec<Vec<u32>> {
    let n = lg.vertex_count() as usize;
    if n == 0 {
        return Vec::new();
    }
    // union-find over path fragments
    let mut uf: Vec<u32> = (0..n as u32).collect();
    fn find(uf: &mut [u32], v: u32) -> u32 {
        let mut root = v;
        // audit:allow(panic-freedom) union-find entries are vertex ids < n == uf.len()
        while uf[root as usize] != root {
            root = uf[root as usize];
        }
        let mut cur = v;
        // audit:allow(panic-freedom) union-find entries are vertex ids < n == uf.len()
        while uf[cur as usize] != root {
            let next = uf[cur as usize];
            // audit:allow(panic-freedom) union-find entries are vertex ids < n == uf.len()
            uf[cur as usize] = root;
            cur = next;
        }
        root
    }
    let mut cover_deg = vec![0u8; n];
    let mut cover_adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut edges: Vec<(u32, u32)> = lg.edges().to_vec();
    edges.sort_by_key(|&(u, v)| lg.degree(u) + lg.degree(v));
    for (u, v) in edges {
        // audit:allow(panic-freedom) u, v are line-graph vertex ids < n == cover_deg.len()
        if cover_deg[u as usize] >= 2 || cover_deg[v as usize] >= 2 {
            continue;
        }
        let (ru, rv) = (find(&mut uf, u), find(&mut uf, v));
        if ru == rv {
            continue; // would close a cycle
        }
        // audit:allow(panic-freedom) find returns ids < n; u, v < n == cover_adj.len()
        uf[ru as usize] = rv;
        cover_deg[u as usize] += 1;
        // audit:allow(panic-freedom) find returns ids < n; u, v < n == cover_adj.len()
        cover_deg[v as usize] += 1;
        cover_adj[u as usize].push(v);
        // audit:allow(panic-freedom) find returns ids < n; u, v < n == cover_adj.len()
        cover_adj[v as usize].push(u);
    }
    // materialize paths: walk from endpoints (cover degree <= 1)
    let mut seen = vec![false; n];
    let mut paths = Vec::new();
    for start in 0..n as u32 {
        // audit:allow(panic-freedom) start ranges over 0..n == seen.len() == cover_deg.len()
        if seen[start as usize] || cover_deg[start as usize] > 1 {
            continue;
        }
        let mut path = vec![start];
        // audit:allow(panic-freedom) start < n == seen.len()
        seen[start as usize] = true;
        let mut cur = start;
        loop {
            // audit:allow(panic-freedom) cover entries are vertex ids < n == cover_adj.len()
            let next = cover_adj[cur as usize]
                .iter()
                .copied()
                // audit:allow(panic-freedom) cover entries are vertex ids < n == seen.len()
                .find(|&w| !seen[w as usize]);
            match next {
                Some(w) => {
                    // audit:allow(panic-freedom) w is a vertex id < n == seen.len()
                    seen[w as usize] = true;
                    path.push(w);
                    cur = w;
                }
                None => break,
            }
        }
        paths.push(path);
    }
    debug_assert!(
        seen.iter().all(|&s| s),
        "cover is acyclic so endpoints reach everything"
    );
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use jp_graph::{generators, line_graph};

    #[test]
    fn cover_is_disjoint_paths_on_real_line_graphs() {
        for g in [generators::spider(5), generators::complete_bipartite(3, 4)] {
            let lg = line_graph(&g);
            let paths = greedy_path_cover(&lg);
            let mut seen = vec![false; lg.vertex_count() as usize];
            for p in &paths {
                for w in p.windows(2) {
                    assert!(lg.has_edge(w[0], w[1]));
                }
                for &v in p {
                    assert!(!seen[v as usize]);
                    seen[v as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn single_path_graph_yields_one_path() {
        // L(path graph) is a path; greedy must cover it with one path.
        let g = generators::path(8);
        let lg = line_graph(&g);
        let paths = greedy_path_cover(&lg);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 8);
    }

    #[test]
    fn perfect_on_clique_line_graphs() {
        let g = generators::star(10); // L = K_10
        let s = pebble_path_cover(&g).unwrap();
        s.validate(&g).unwrap();
        assert_eq!(s.effective_cost(&g), 10);
    }

    #[test]
    fn near_optimal_on_spiders() {
        // π(G_n) = m + ceil(n/2) − 1; path cover should land close.
        use crate::exact::optimal_effective_cost;
        for n in [3u32, 4, 5, 6] {
            let g = generators::spider(n);
            let s = pebble_path_cover(&g).unwrap();
            s.validate(&g).unwrap();
            let opt = optimal_effective_cost(&g).unwrap();
            let got = s.effective_cost(&g);
            assert!(got >= opt);
            assert!(got <= opt + 2, "G_{n}: {got} vs opt {opt}");
        }
    }

    #[test]
    fn valid_on_random_graphs() {
        for seed in 0..20 {
            let g = generators::random_connected_bipartite(6, 5, 15, seed);
            let s = pebble_path_cover(&g).unwrap();
            s.validate(&g).unwrap();
            assert!(s.effective_cost(&g) < 2 * g.edge_count(), "seed {seed}");
        }
    }

    #[test]
    fn isolated_line_graph_vertices_become_singletons() {
        // matching: L(G) has no edges; every vertex its own path
        let g = generators::matching(4);
        let s = pebble_path_cover(&g).unwrap();
        s.validate(&g).unwrap();
        assert_eq!(s.cost(), 8); // Lemma 2.4: 2m
    }
}
