//! Or-opt local search on TSP(1,2) tours.
//!
//! Complements [`crate::approx::two_opt`]: instead of reversing a
//! segment, or-opt *relocates* a short segment (length 1–3) between two
//! other positions. On weight-{1,2} instances this fixes the common
//! pattern 2-opt cannot: a vertex stranded between two jumps that fits
//! snugly somewhere else (frequent in line graphs of star-like join
//! graphs). Used as the second rung of the improvement ladder and by the
//! branch-and-bound incumbent in ablation experiments.

use crate::tsp::Tsp12;

/// Improves `tour` in place by first-improvement or-opt passes (segment
/// lengths 1, 2, 3) until no improving move exists or `max_passes` is
/// exhausted. Returns the total cost reduction.
pub fn improve_or_opt(tsp: &Tsp12, tour: &mut Vec<u32>, max_passes: usize) -> usize {
    let n = tour.len();
    if n < 3 {
        return 0;
    }
    let _span = jp_obs::span("approx.or_opt", "improve");
    let start_cost = tsp.tour_cost(tour);
    let mut improved_any = true;
    let mut passes = 0;
    let mut moves: u64 = 0;
    while improved_any && passes < max_passes {
        improved_any = false;
        passes += 1;
        'outer: for seg_len in 1..=3usize {
            if seg_len + 1 >= n {
                continue;
            }
            for i in 0..=(n - seg_len) {
                let j = i + seg_len; // segment is tour[i..j]
                                     // cost of edges removed around the segment
                let removed = edge_w(tsp, tour, i.wrapping_sub(1), i) + edge_w(tsp, tour, j - 1, j);
                // closing the gap
                // audit:allow(panic-freedom) guarded: 0 < i and j < n == tour.len()
                let gap = if i > 0 && j < n {
                    tsp.weight(tour[i - 1], tour[j])
                } else {
                    0
                };
                // try inserting between positions (k, k+1) outside the segment
                for k in 0..n - 1 {
                    if k + 1 >= i && k < j {
                        continue; // overlaps the segment or its boundary
                    }
                    // audit:allow(panic-freedom) k < n - 1, so k and k+1 index tour
                    let old_edge = tsp.weight(tour[k], tour[k + 1]);
                    // segment endpoints after insertion (either orientation)
                    // audit:allow(panic-freedom) i < j <= n, so i and j-1 index tour
                    let (seg_front, seg_back) = (tour[i], tour[j - 1]);
                    for flip in [false, true] {
                        let (s_head, s_tail) = if flip {
                            (seg_back, seg_front)
                        } else {
                            (seg_front, seg_back)
                        };
                        // audit:allow(panic-freedom) k < n - 1, so k and k+1 index tour
                        let added = tsp.weight(tour[k], s_head) + tsp.weight(s_tail, tour[k + 1]);
                        let before = removed + old_edge;
                        let after = gap + added;
                        if after < before {
                            apply_move(tour, i, j, k, flip);
                            improved_any = true;
                            moves += 1;
                            continue 'outer;
                        }
                    }
                }
            }
        }
    }
    let saved = start_cost - tsp.tour_cost(tour);
    if jp_obs::enabled() {
        jp_obs::counter("approx.or_opt", "passes", passes as u64);
        jp_obs::counter("approx.or_opt", "improving_moves", moves);
        jp_obs::counter("approx.or_opt", "cost_saved", saved as u64);
    }
    saved
}

/// Weight of the tour edge between positions `a` and `b`, or 0 when
/// either position is off the ends (usize::MAX wraps handle `i = 0`).
fn edge_w(tsp: &Tsp12, tour: &[u32], a: usize, b: usize) -> usize {
    if a >= tour.len() || b >= tour.len() {
        return 0;
    }
    // audit:allow(panic-freedom) guarded: a and b checked against tour.len() above
    tsp.weight(tour[a], tour[b])
}

/// Removes `tour[i..j]` and reinserts it (possibly flipped) after the
/// element originally at position `k` (`k` outside `[i-1, j)`).
fn apply_move(tour: &mut Vec<u32>, i: usize, j: usize, k: usize, flip: bool) {
    let mut seg: Vec<u32> = tour.drain(i..j).collect();
    if flip {
        seg.reverse();
    }
    // position k referred to the original tour; after drain, indices past
    // the segment shift left by its length
    let insert_at = if k < i { k + 1 } else { k + 1 - seg.len() };
    for (offset, v) in seg.into_iter().enumerate() {
        tour.insert(insert_at + offset, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::nearest_neighbor::nearest_neighbor_tour;
    use jp_graph::{generators, line_graph, Graph};

    #[test]
    fn relocates_a_stranded_vertex() {
        // L = path 0-1-2-3-4; tour [0,1,3,4,2] strands 2 at the end.
        let lg = Graph::new(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        let tsp = Tsp12::new(lg);
        let mut tour = vec![0, 1, 3, 4, 2];
        let saved = improve_or_opt(&tsp, &mut tour, 10);
        assert!(saved >= 1, "should relocate vertex 2 between 1 and 3");
        assert_eq!(tsp.tour_jumps(&tour), 0);
        assert!(tsp.is_valid_tour(&tour));
    }

    #[test]
    fn never_worsens_and_preserves_validity() {
        for seed in 0..20 {
            let g = generators::random_connected_bipartite(5, 5, 12, seed);
            let lg = line_graph(&g);
            let tsp = Tsp12::new(lg.clone());
            let mut tour = nearest_neighbor_tour(&lg);
            let before = tsp.tour_cost(&tour);
            improve_or_opt(&tsp, &mut tour, 5);
            assert!(tsp.is_valid_tour(&tour), "seed {seed}");
            assert!(tsp.tour_cost(&tour) <= before, "seed {seed}");
        }
    }

    #[test]
    fn combined_ladder_reaches_optimum_usually() {
        use crate::approx::two_opt::improve_two_opt;
        use crate::exact::min_jump_tour;
        let mut hits = 0;
        for seed in 0..10 {
            let g = generators::random_connected_bipartite(4, 4, 10, seed);
            let lg = line_graph(&g);
            let (_, opt) = min_jump_tour(&lg);
            let tsp = Tsp12::new(lg.clone());
            let mut tour = nearest_neighbor_tour(&lg);
            improve_two_opt(&tsp, &mut tour, 10);
            improve_or_opt(&tsp, &mut tour, 10);
            improve_two_opt(&tsp, &mut tour, 10);
            if tsp.tour_jumps(&tour) == opt {
                hits += 1;
            }
        }
        assert!(
            hits >= 7,
            "ladder should usually reach optimum, got {hits}/10"
        );
    }

    #[test]
    fn tiny_tours_untouched() {
        let tsp = Tsp12::new(Graph::new(2, vec![(0, 1)]));
        let mut tour = vec![0, 1];
        assert_eq!(improve_or_opt(&tsp, &mut tour, 3), 0);
        assert_eq!(tour, vec![0, 1]);
    }
}
