//! The constructive 1.25-approximation of Theorem 3.1.
//!
//! "We give a partition `E = E₁ ∪ … ∪ E_k`, where each `E_i` has a
//! Hamiltonian path and at most one `|E_i| < 4`." The construction works
//! on a rooted DFS tree of the (claw-free) line graph `L(G)`:
//!
//! 1. in a DFS tree of a claw-free graph every node has ≤ 2 children
//!    (children are pairwise non-adjacent, so 3 children + parent would
//!    be an induced `K_{1,3}`);
//! 2. *twin elimination*: two leaf siblings `l₁, l₂` under `p` with
//!    grandparent `g` cannot both be non-adjacent to `g` (claw-freeness,
//!    since `l₁ ⊥ l₂`), so rotating the tree — delete `(g,p)`, add
//!    `(g,l₁)`, making `p` a child of `l₁` — removes the twin without
//!    changing the vertex set or spanning property;
//! 3. repeatedly peel the subtree of a *lowest* node with ≥ 4 descendants:
//!    with no twins, each child subtree of size ≤ 3 is a path, so the
//!    peeled subtree is a path of 4–7 vertices; the rest of the tree stays
//!    connected. A final remainder of ≤ 3 vertices (connected, so
//!    traceable) may survive.
//!
//! Stitching the peeled paths yields a tour with at most
//! `⌊m/4⌋` jumps, i.e. `π ≤ ⌈1.25·m⌉` per connected component — the
//! Lemma 3.1 guarantee. (The sharper `π(G) ≤ 1.25m − 1` of Theorem 3.1 is
//! a statement about the *optimum*, certified separately by the exact
//! solver.)
//!
//! Each peel recomputes the DFS tree of the remaining induced subgraph —
//! `O(|L(G)|)` per round — keeping the implementation exactly aligned
//! with the proof. The paper's linear-time refinement (Lemma 3.1) is
//! represented at scale by [`crate::approx::euler_trails`].

use crate::approx::{per_component_scheme, stitch_paths};
use crate::scheme::PebblingScheme;
use crate::PebbleError;
use jp_graph::traversal::DfsTree;
use jp_graph::{BipartiteGraph, Graph};

/// Pebbles an arbitrary bipartite graph with guaranteed effective cost
/// `≤ Σ_c ⌈1.25·m_c⌉` over components (Theorem 3.1's algorithmic bound).
// audit:allow(obs-coverage) thin wrapper — per_component_scheme opens the approx.dfs_partition span
pub fn pebble_dfs_partition(g: &BipartiteGraph) -> Result<PebblingScheme, PebbleError> {
    per_component_scheme(g, "approx.dfs_partition", |lg| {
        let paths = partition_into_paths(lg);
        jp_obs::counter("approx.dfs_partition", "paths", paths.len() as u64);
        stitch_paths(lg, paths)
    })
}

/// Partitions the vertex set of a connected claw-free graph (a line
/// graph) into vertex-disjoint paths, all but at most one of length ≥ 4 —
/// the Theorem 3.1 partition. Exposed for direct testing of the
/// partition invariants.
// audit:allow(obs-coverage) partition worker — pebble_dfs_partition opens the span
pub fn partition_into_paths(lg: &Graph) -> Vec<Vec<u32>> {
    let n = lg.vertex_count() as usize;
    if n == 0 {
        return Vec::new();
    }
    debug_assert!(
        jp_graph::line_graph::is_claw_free(lg),
        "input must be claw-free"
    );
    let mut alive: Vec<bool> = vec![true; n];
    let mut alive_count = n;
    let mut paths: Vec<Vec<u32>> = Vec::new();
    while alive_count > 0 {
        // audit:allow(panic-freedom) v ranges over 0..n == alive.len()
        let keep: Vec<u32> = (0..n as u32).filter(|&v| alive[v as usize]).collect();
        let (sub, back) = lg.induced_subgraph(&keep);
        debug_assert!(sub.is_connected(), "peeling must preserve connectivity");
        if alive_count <= 3 {
            let p = small_hamiltonian_path(&sub);
            // audit:allow(panic-freedom) subgraph vertices index back, which maps all of them
            paths.push(p.into_iter().map(|v| back[v as usize]).collect());
            break;
        }
        let path = peel_one_path(&sub);
        for &v in &path {
            // audit:allow(panic-freedom) back maps subgraph vertices to original ids < n
            alive[back[v as usize] as usize] = false;
        }
        alive_count -= path.len();
        // audit:allow(panic-freedom) back maps subgraph vertices to original ids < n
        paths.push(path.into_iter().map(|v| back[v as usize]).collect());
    }
    paths
}

/// Hamiltonian path of a connected graph with ≤ 3 vertices (single
/// vertex, edge, path, or triangle — all traceable).
fn small_hamiltonian_path(g: &Graph) -> Vec<u32> {
    let n = g.vertex_count();
    debug_assert!((1..=3).contains(&n));
    match n {
        1 => vec![0],
        2 => vec![0, 1],
        _ => {
            // order the three vertices so consecutive ones are adjacent
            for [a, b, c] in [[0u32, 1, 2], [0, 2, 1], [1, 0, 2]] {
                if g.has_edge(a, b) && g.has_edge(b, c) {
                    return vec![a, b, c];
                }
            }
            // audit:allow(panic-freedom) proof invariant: a connected graph on 3 vertices is traceable
            unreachable!("connected graph on 3 vertices is traceable")
        }
    }
}

/// One round of the Theorem 3.1 peeling on a connected claw-free graph
/// with ≥ 4 vertices: DFS tree, twin elimination, peel the subtree of a
/// lowest node with ≥ 4 descendants. Returns the peeled path.
fn peel_one_path(sub: &Graph) -> Vec<u32> {
    let n = sub.vertex_count() as usize;
    let t = DfsTree::new(sub, 0);
    debug_assert_eq!(t.len(), n, "graph must be connected");
    // Mutable tree representation.
    let mut parent = t.parent.clone();
    let mut children = t.children.clone();
    eliminate_twins(sub, &mut parent, &mut children);
    // Depths and subtree sizes from the (rotated) tree.
    let order = preorder(t.root, &children, n);
    let mut depth = vec![0u32; n];
    let mut size = vec![1u32; n];
    for &v in &order {
        // audit:allow(panic-freedom) tree arrays are n-sized and hold vertex ids < n
        if parent[v as usize] != u32::MAX {
            depth[v as usize] = depth[parent[v as usize] as usize] + 1;
        }
    }
    for &v in order.iter().rev() {
        // audit:allow(panic-freedom) tree arrays are n-sized and hold vertex ids < n
        if parent[v as usize] != u32::MAX {
            size[parent[v as usize] as usize] += size[v as usize];
        }
    }
    // Lowest (deepest) node with >= 4 descendants.
    // audit:allow(panic-freedom) v ranges over 0..n == size.len() == depth.len()
    let r = (0..n as u32)
        .filter(|&v| size[v as usize] >= 4)
        // audit:allow(panic-freedom) v ranges over 0..n == depth.len()
        .max_by_key(|&v| depth[v as usize])
        .unwrap_or(t.root); // the root itself has n >= 4 descendants (caller's guard)
                            // Collect r's subtree; with no twins it is a path through r.
                            // audit:allow(panic-freedom) r < n == size.len()
    let subtree = preorder(r, &children, size[r as usize] as usize);
    linearize_path_subtree(r, &children, &subtree)
}

/// Preorder of the subtree rooted at `r` (capacity hint `cap`).
fn preorder(r: u32, children: &[Vec<u32>], cap: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(cap);
    let mut stack = vec![r];
    while let Some(v) = stack.pop() {
        out.push(v);
        // audit:allow(panic-freedom) tree nodes are vertex ids < children.len()
        for &c in children[v as usize].iter().rev() {
            stack.push(c);
        }
    }
    out
}

/// Twin elimination: while two leaf siblings exist, rotate. Leaf siblings
/// are pairwise non-adjacent (DFS children), so claw-freeness guarantees
/// the grandparent is adjacent to one of them.
fn eliminate_twins(g: &Graph, parent: &mut [u32], children: &mut [Vec<u32>]) {
    loop {
        let mut rotated = false;
        for p in 0..parent.len() as u32 {
            // audit:allow(panic-freedom) p ranges over 0..parent.len() == children.len()
            let leaves: Vec<u32> = children[p as usize]
                .iter()
                .copied()
                // audit:allow(panic-freedom) children hold vertex ids < children.len()
                .filter(|&c| children[c as usize].is_empty())
                .collect();
            if leaves.len() < 2 {
                continue;
            }
            // audit:allow(panic-freedom) p ranges over 0..parent.len()
            let gp = parent[p as usize];
            if gp == u32::MAX {
                // p is the root: with ≤2 children both leaves, the whole
                // tree is a path already (≤3 nodes) — caller handles that
                // case before peeling; no rotation possible or needed.
                continue;
            }
            let [l1, l2, ..] = leaves.as_slice() else {
                continue; // unreachable: guarded by leaves.len() >= 2 above
            };
            let (l1, l2) = (*l1, *l2);
            // claw-freeness: gp adjacent to l1 or l2
            let l = if g.has_edge(gp, l1) {
                l1
            } else {
                debug_assert!(
                    g.has_edge(gp, l2),
                    "claw-freeness violated: {gp} not adjacent to either twin"
                );
                l2
            };
            // rotate: remove (gp, p), add (gp, l), reparent p under l
            // audit:allow(panic-freedom) gp, p, l are tree vertex ids < children.len()
            children[gp as usize].retain(|&c| c != p);
            children[gp as usize].push(l);
            // audit:allow(panic-freedom) gp, p, l are tree vertex ids < children.len()
            children[p as usize].retain(|&c| c != l);
            children[l as usize].push(p);
            // audit:allow(panic-freedom) gp, p, l are tree vertex ids < parent.len()
            parent[l as usize] = gp;
            parent[p as usize] = l;
            rotated = true;
            break;
        }
        if !rotated {
            return;
        }
    }
}

/// Linearizes a tree known to be a path (every node ≤ 2 tree-neighbours):
/// returns the vertices in path order.
fn linearize_path_subtree(r: u32, children: &[Vec<u32>], subtree: &[u32]) -> Vec<u32> {
    // r has ≤ 2 children; every other node ≤ 1 child. Walk down each arm.
    let walk_down = |start: u32| -> Vec<u32> {
        let mut arm = Vec::new();
        let mut v = start;
        loop {
            arm.push(v);
            // audit:allow(panic-freedom) tree nodes are vertex ids < children.len()
            match children[v as usize].as_slice() {
                [] => break,
                [c] => v = *c,
                // audit:allow(panic-freedom) proof invariant: twin elimination leaves every non-root node <= 1 child
                more => panic!(
                    "subtree is not a path: node {v} has {} children (twin elimination incomplete)",
                    more.len()
                ),
            }
        }
        arm
    };
    // audit:allow(panic-freedom) r is a tree vertex id < children.len()
    let path = match children[r as usize].as_slice() {
        [] => vec![r],
        [c] => {
            let mut p = vec![r];
            p.extend(walk_down(*c));
            p
        }
        [c1, c2] => {
            let mut left = walk_down(*c1);
            left.reverse();
            left.push(r);
            left.extend(walk_down(*c2));
            left
        }
        // audit:allow(panic-freedom) proof invariant: DFS trees of claw-free graphs have <= 2 children per node
        more => panic!(
            "node {r} has {} children in a claw-free DFS tree",
            more.len()
        ),
    };
    debug_assert_eq!(
        path.len(),
        subtree.len(),
        "path must cover the whole subtree"
    );
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use jp_graph::{generators, line_graph};

    fn check_partition(g: &BipartiteGraph) {
        let lg = line_graph(g);
        let paths = partition_into_paths(&lg);
        // disjoint cover
        let mut seen = vec![false; lg.vertex_count() as usize];
        for p in &paths {
            for w in p.windows(2) {
                assert!(lg.has_edge(w[0], w[1]), "parts must be paths in L(G)");
            }
            for &v in p {
                assert!(!seen[v as usize], "vertex {v} covered twice");
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "all vertices covered");
        // at most one small part
        let small = paths.iter().filter(|p| p.len() < 4).count();
        assert!(small <= 1, "at most one part smaller than 4, got {small}");
    }

    #[test]
    fn partition_invariants_on_families() {
        for g in [
            generators::spider(3),
            generators::spider(6),
            generators::path(9),
            generators::cycle(4),
            generators::complete_bipartite(3, 4),
            generators::star(7),
        ] {
            check_partition(&g);
        }
    }

    #[test]
    fn partition_invariants_on_random_graphs() {
        for seed in 0..25 {
            let g = generators::random_connected_bipartite(5, 6, 14, seed);
            check_partition(&g);
        }
    }

    #[test]
    fn guarantee_holds_on_families() {
        for g in [
            generators::spider(8),
            generators::path(13),
            generators::complete_bipartite(4, 5),
            generators::cycle(6),
        ] {
            let s = pebble_dfs_partition(&g).unwrap();
            s.validate(&g).unwrap();
            let m = g.edge_count();
            assert!(
                s.effective_cost(&g) <= (5 * m).div_ceil(4),
                "{g}: cost {} > 1.25·{m}",
                s.effective_cost(&g)
            );
        }
    }

    #[test]
    fn guarantee_holds_on_random_graphs() {
        // CLAIM(T3.1)
        for seed in 0..30 {
            let g = generators::random_connected_bipartite(6, 6, 16, seed);
            let s = pebble_dfs_partition(&g).unwrap();
            s.validate(&g).unwrap();
            let m = g.edge_count();
            assert!(s.effective_cost(&g) <= (5 * m).div_ceil(4), "seed {seed}");
            assert!(s.effective_cost(&g) >= bounds::lower_bound_effective(&g));
        }
    }

    #[test]
    fn achieves_optimum_on_easy_graphs() {
        // On stars L(G) = K_n: everything is adjacent, no jumps possible.
        let g = generators::star(9);
        let s = pebble_dfs_partition(&g).unwrap();
        assert_eq!(s.effective_cost(&g), 9);
    }

    #[test]
    fn within_125_of_exact_on_small_graphs() {
        use crate::exact::optimal_effective_cost;
        for seed in 0..15 {
            let g = generators::random_connected_bipartite(4, 4, 10, seed);
            let approx = pebble_dfs_partition(&g).unwrap().effective_cost(&g);
            let opt = optimal_effective_cost(&g).unwrap();
            assert!(approx >= opt, "seed {seed}");
            assert!(
                approx as f64 <= 1.25 * opt as f64 + 1.0,
                "seed {seed}: {approx} vs {opt}"
            );
        }
    }

    #[test]
    fn disconnected_graphs_handled() {
        let g = generators::spider(4).disjoint_union(&generators::path(5));
        let s = pebble_dfs_partition(&g).unwrap();
        s.validate(&g).unwrap();
    }

    #[test]
    fn single_edge() {
        let g = generators::complete_bipartite(1, 1);
        let s = pebble_dfs_partition(&g).unwrap();
        assert_eq!(s.effective_cost(&g), 1);
    }
}
