//! Approximation algorithms and heuristics for `PEBBLE`.
//!
//! `PEBBLE` is NP-complete (Theorem 4.2) and MAX-SNP-complete
//! (Theorem 4.4): no PTAS exists unless `P = NP`, but constant factors are
//! achievable. This module provides the ladder the paper sketches:
//!
//! * [`equijoin`] — Theorem 4.1: *exact* and linear-time on equijoin join
//!   graphs (the easy extreme);
//! * [`dfs_partition`] — Theorem 3.1 / Lemma 3.1: the constructive
//!   1.25-factor guarantee for arbitrary connected bipartite graphs;
//! * [`nearest_neighbor`], [`path_cover`], [`euler_trails`] — fast
//!   heuristics without (or with weaker) guarantees;
//! * [`matching_cover`] — the "with more work, one can approximate
//!   better" remark made concrete: a maximum-matching-seeded path cover
//!   (Edmonds' blossoms over `L(G)`), the core of the
//!   Papadimitriou–Yannakakis 7/6 approach;
//! * [`two_opt`], [`or_opt`] — local-search improvements applicable on
//!   top of any tour (segment reversal / segment relocation).

pub mod dfs_partition;
pub mod equijoin;
pub mod euler_trails;
pub mod matching_cover;
pub mod nearest_neighbor;
pub mod or_opt;
pub mod path_cover;
pub mod two_opt;

pub use dfs_partition::pebble_dfs_partition;
pub use equijoin::pebble_equijoin;
pub use euler_trails::pebble_euler_trails;
pub use matching_cover::pebble_matching_cover;
pub use nearest_neighbor::pebble_nearest_neighbor;
pub use or_opt::improve_or_opt;
pub use path_cover::pebble_path_cover;
pub use two_opt::improve_two_opt;

use crate::scheme::PebblingScheme;
use crate::PebbleError;
use jp_graph::{BipartiteGraph, ComponentMap};

/// Runs a per-component line-graph tour builder over every connected
/// component and assembles one scheme, in component order (additivity,
/// Lemma 2.2, says this loses nothing). `obs_component` names the
/// heuristic in emitted instrumentation events (e.g. `"approx.nn"`).
pub(crate) fn per_component_scheme(
    g: &BipartiteGraph,
    obs_component: &'static str,
    mut tour_for: impl FnMut(&jp_graph::Graph) -> Vec<u32>,
) -> Result<PebblingScheme, PebbleError> {
    let _span = jp_obs::span(obs_component, "pebble");
    let cm = ComponentMap::new(g);
    jp_obs::counter(obs_component, "components", u64::from(cm.count));
    jp_obs::counter(obs_component, "edges", g.edge_count() as u64);
    let mut order: Vec<usize> = Vec::with_capacity(g.edge_count());
    let mut jumps: u64 = 0;
    for edges in cm.edges_by_component() {
        let sub = g.edge_subgraph(&edges);
        let lg = jp_graph::line_graph(&sub);
        let tour = tour_for(&lg);
        debug_assert_eq!(tour.len(), edges.len());
        if jp_obs::enabled() {
            jumps += tour
                .windows(2)
                .filter(|w| matches!(w, [a, b] if !lg.has_edge(*a, *b)))
                .count() as u64;
        }
        // audit:allow(panic-freedom) tour is a permutation of line-graph vertices 0..edges.len()
        order.extend(tour.iter().map(|&e| edges[e as usize]));
    }
    jp_obs::counter(obs_component, "jumps", jumps);
    PebblingScheme::from_edge_sequence(g, &order)
}

/// Greedy stitching of vertex-disjoint paths in a graph into one tour:
/// repeatedly appends the unused path (in either orientation) whose head
/// is adjacent to the current tail, falling back to an arbitrary path
/// (which costs a jump). Shared helper of the path-producing heuristics.
pub(crate) fn stitch_paths(lg: &jp_graph::Graph, mut paths: Vec<Vec<u32>>) -> Vec<u32> {
    let mut tour: Vec<u32> = Vec::new();
    if paths.is_empty() {
        return tour;
    }
    tour.append(&mut paths.remove(0));
    while !paths.is_empty() {
        let mut chosen: Option<(usize, bool)> = None;
        if let Some(&tail) = tour.last() {
            for (i, p) in paths.iter().enumerate() {
                let (Some(&head), Some(&last)) = (p.first(), p.last()) else {
                    continue;
                };
                if lg.has_edge(tail, head) {
                    chosen = Some((i, false));
                    break;
                }
                if lg.has_edge(tail, last) {
                    chosen = Some((i, true));
                    break;
                }
            }
        }
        let (i, rev) = chosen.unwrap_or((0, false));
        let mut p = paths.remove(i);
        if rev {
            p.reverse();
        }
        tour.append(&mut p);
    }
    tour
}

#[cfg(test)]
mod tests {
    use super::*;
    use jp_graph::{generators, Graph};

    #[test]
    fn stitch_prefers_good_connections() {
        // L = path 0-1-2-3; paths [0,1] and [2,3] stitch without jump.
        let lg = Graph::new(4, vec![(0, 1), (1, 2), (2, 3)]);
        let tour = stitch_paths(&lg, vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(tour, vec![0, 1, 2, 3]);
        // reversed orientation also found
        let tour = stitch_paths(&lg, vec![vec![1, 0], vec![3, 2]]);
        assert_eq!(tour, vec![1, 0, 3, 2].into_iter().collect::<Vec<u32>>());
        // wait: 0 adjacent to 3? no — stitching falls back. Check cost via
        // count of non-edges along the tour instead of exact sequence.
        let jumps = tour.windows(2).filter(|w| !lg.has_edge(w[0], w[1])).count();
        assert!(jumps <= 1);
    }

    #[test]
    fn stitch_empty_and_single() {
        let lg = Graph::empty(3);
        assert!(stitch_paths(&lg, vec![]).is_empty());
        assert_eq!(stitch_paths(&lg, vec![vec![2]]), vec![2]);
    }

    #[test]
    fn per_component_scheme_covers_all_components() {
        let g = generators::path(3).disjoint_union(&generators::matching(2));
        // trivial tour: identity order per component
        let s =
            per_component_scheme(&g, "approx.test", |lg| (0..lg.vertex_count()).collect()).unwrap();
        s.validate(&g).unwrap();
    }
}
