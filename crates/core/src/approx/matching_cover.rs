//! Matching-seeded path cover — toward the Papadimitriou–Yannakakis 7/6.
//!
//! The paper: "an algorithm by Papadimitriou and Yannakakis can be used
//! to approximate PEBBLE within a factor of 7/6". Their TSP(1,2)
//! algorithm grows tours from maximum matchings; this pebbler implements
//! the matching-seeded core: take a **maximum matching** of `L(G)`
//! (Edmonds' blossoms — line graphs are non-bipartite), which is the
//! provably largest set of disjoint good steps, then greedily link the
//! matched pairs and leftover vertices into paths and stitch.
//!
//! Guarantee inherited from the matching: the tour uses at least
//! `|M| = ν(L(G))` good edges, so jumps `≤ (m − 1) − ν(L(G))` — at least
//! as strong a start as any greedy cover can promise. (The full 7/6
//! bound needs maximum *2-matchings*; DESIGN.md records the delta.)

use crate::approx::{per_component_scheme, stitch_paths};
use crate::scheme::PebblingScheme;
use crate::PebbleError;
use jp_graph::{matching::maximum_matching, BipartiteGraph, Graph};

/// Pebbles via a maximum-matching-seeded path cover of each component's
/// line graph.
// audit:allow(obs-coverage) thin wrapper — per_component_scheme opens the approx.matching_cover span
pub fn pebble_matching_cover(g: &BipartiteGraph) -> Result<PebblingScheme, PebbleError> {
    per_component_scheme(g, "approx.matching_cover", |lg| {
        let paths = matching_path_cover(lg);
        jp_obs::counter("approx.matching_cover", "paths", paths.len() as u64);
        stitch_paths(lg, paths)
    })
}

/// Path cover seeded with a maximum matching: matched edges enter the
/// cover first (they can never conflict), then remaining good edges are
/// added greedily while the cover stays a disjoint union of paths.
// audit:allow(obs-coverage) cover worker — pebble_matching_cover opens the span
pub fn matching_path_cover(lg: &Graph) -> Vec<Vec<u32>> {
    let n = lg.vertex_count() as usize;
    if n == 0 {
        return Vec::new();
    }
    let matching = maximum_matching(lg);
    let mut uf: Vec<u32> = (0..n as u32).collect();
    fn find(uf: &mut [u32], v: u32) -> u32 {
        let mut root = v;
        // audit:allow(panic-freedom) union-find entries are vertex ids < n == uf.len()
        while uf[root as usize] != root {
            root = uf[root as usize];
        }
        let mut cur = v;
        // audit:allow(panic-freedom) union-find entries are vertex ids < n == uf.len()
        while uf[cur as usize] != root {
            let next = uf[cur as usize];
            // audit:allow(panic-freedom) union-find entries are vertex ids < n == uf.len()
            uf[cur as usize] = root;
            cur = next;
        }
        root
    }
    let mut cover_deg = vec![0u8; n];
    let mut cover_adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let add =
        |u: u32, v: u32, uf: &mut Vec<u32>, deg: &mut Vec<u8>, adj: &mut Vec<Vec<u32>>| -> bool {
            // audit:allow(panic-freedom) u, v are line-graph vertex ids < n == deg.len()
            if deg[u as usize] >= 2 || deg[v as usize] >= 2 {
                return false;
            }
            let (ru, rv) = (find(uf, u), find(uf, v));
            if ru == rv {
                return false;
            }
            // audit:allow(panic-freedom) find returns ids < n; u, v < n == adj.len()
            uf[ru as usize] = rv;
            deg[u as usize] += 1;
            // audit:allow(panic-freedom) find returns ids < n; u, v < n == adj.len()
            deg[v as usize] += 1;
            adj[u as usize].push(v);
            // audit:allow(panic-freedom) find returns ids < n; u, v < n == adj.len()
            adj[v as usize].push(u);
            true
        };
    // 1. seed with the maximum matching (always addable: disjoint edges)
    for (u, v) in matching.edges() {
        let ok = add(u, v, &mut uf, &mut cover_deg, &mut cover_adj);
        debug_assert!(ok, "matching edges are disjoint");
    }
    // 2. link greedily with remaining good edges, scarce endpoints first
    let mut rest: Vec<(u32, u32)> = lg
        .edges()
        .iter()
        .copied()
        // audit:allow(panic-freedom) mate is n-sized, u is a vertex id < n
        .filter(|&(u, v)| matching.mate[u as usize] != v)
        .collect();
    rest.sort_by_key(|&(u, v)| lg.degree(u) + lg.degree(v));
    for (u, v) in rest {
        add(u, v, &mut uf, &mut cover_deg, &mut cover_adj);
    }
    // 3. materialize paths
    let mut seen = vec![false; n];
    let mut paths = Vec::new();
    for start in 0..n as u32 {
        // audit:allow(panic-freedom) start ranges over 0..n == seen.len() == cover_deg.len()
        if seen[start as usize] || cover_deg[start as usize] > 1 {
            continue;
        }
        let mut path = vec![start];
        // audit:allow(panic-freedom) start < n == seen.len()
        seen[start as usize] = true;
        let mut cur = start;
        // audit:allow(panic-freedom) cover entries are vertex ids < n == seen.len()
        while let Some(&w) = cover_adj[cur as usize].iter().find(|&&w| !seen[w as usize]) {
            seen[w as usize] = true;
            path.push(w);
            cur = w;
        }
        paths.push(path);
    }
    debug_assert!(seen.iter().all(|&s| s));
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::optimal_effective_cost;
    use jp_graph::{generators, line_graph};

    #[test]
    fn cover_contains_a_maximum_matching_worth_of_good_edges() {
        for seed in 0..10 {
            let g = generators::random_connected_bipartite(5, 5, 12, seed);
            let lg = line_graph(&g);
            let nu = maximum_matching(&lg).len();
            let paths = matching_path_cover(&lg);
            let good_edges: usize = paths.iter().map(|p| p.len() - 1).sum();
            assert!(
                good_edges >= nu,
                "seed {seed}: cover {good_edges} < matching {nu}"
            );
            // jump bound: tour jumps <= paths - 1 = (n - good) - 1
            let n = lg.vertex_count() as usize;
            assert_eq!(paths.len(), n - good_edges);
        }
    }

    #[test]
    fn valid_schemes_with_matching_strength() {
        for seed in 0..15 {
            let g = generators::random_connected_bipartite(5, 5, 13, seed);
            let s = pebble_matching_cover(&g).unwrap();
            s.validate(&g).unwrap();
            let opt = optimal_effective_cost(&g).unwrap();
            assert!(s.effective_cost(&g) >= opt, "seed {seed}");
            // matching bound: jumps <= m - 1 - nu(L)
            let lg = line_graph(&g);
            let nu = maximum_matching(&lg).len();
            assert!(
                s.jumps(&g) <= g.edge_count() - 1 - nu,
                "seed {seed}: matching jump bound violated"
            );
        }
    }

    #[test]
    fn optimal_on_spiders() {
        // the matching seed pairs each pendant with its clique vertex —
        // exactly the optimal leg pairing
        for n in [4u32, 6, 8] {
            let g = generators::spider(n);
            let s = pebble_matching_cover(&g).unwrap();
            s.validate(&g).unwrap();
            let opt = crate::families::spider_optimal_cost(n as u64) as usize;
            assert!(
                s.effective_cost(&g) <= opt + 1,
                "G_{n}: {} vs optimal {opt}",
                s.effective_cost(&g)
            );
        }
    }

    #[test]
    fn perfect_on_traceable_families() {
        for g in [
            generators::path(8),
            generators::star(7),
            generators::cycle(4),
        ] {
            let s = pebble_matching_cover(&g).unwrap();
            s.validate(&g).unwrap();
            assert_eq!(s.effective_cost(&g), g.edge_count(), "{g}");
        }
    }

    #[test]
    fn handles_edge_cases() {
        let empty = jp_graph::BipartiteGraph::new(1, 1, vec![]);
        assert_eq!(pebble_matching_cover(&empty).unwrap().cost(), 0);
        let single = generators::complete_bipartite(1, 1);
        assert_eq!(
            pebble_matching_cover(&single)
                .unwrap()
                .effective_cost(&single),
            1
        );
        let disconnected = generators::matching(3).disjoint_union(&generators::spider(3));
        let s = pebble_matching_cover(&disconnected).unwrap();
        s.validate(&disconnected).unwrap();
    }
}
