//! `jp-memo` — workload-level memoization across the solver ladder.
//!
//! Lemma 2.2 (additivity) means every pebbling problem decomposes into
//! independent connected components, and real join workloads repeat the
//! same component shapes over and over: an equijoin is a union of
//! `K_{k,l}` blocks (one per join value), skewed workloads repeat small
//! blocks endlessly, and the structured families of §2–§3 recur across
//! experiments. Today that structure is re-solved from scratch on every
//! isomorphic copy; this module turns the repeats into hash lookups.
//!
//! Three layers:
//!
//! * [`recognize`] — structural recognizers answering complete-bipartite
//!   / matching / path / even-cycle / spider components directly from
//!   the closed forms in [`crate::families`] (Lemmas 2.4 / 3.2, Theorem
//!   3.3) with zero search, at any size;
//! * [`store`] — a sharded, thread-safe cache keyed by the canonical
//!   component form of [`jp_graph::canon`], storing `(cost, relabelable
//!   scheme)` entries; optional JSONL persistence for cross-run reuse.
//!   Every hit is re-validated against the scheme verifier before it is
//!   served, so a stale or corrupt entry degrades to a miss, never to a
//!   wrong answer;
//! * [`driver`] — the workload entry point [`driver::solve_with_memo`]:
//!   per component, recognizer → cache → portfolio race, recording every
//!   fresh solve for the next lookup.
//!
//! The exact solver and the portfolio racer accept an optional memo
//! (`exact::optimal_scheme_memo`, `portfolio::portfolio_scheme_memo`):
//! inside the exact path only entries proved optimal are consulted, so
//! exactness guarantees survive memoization unchanged.

pub mod driver;
pub mod recognize;
pub mod store;

pub use driver::{
    memoized_effective_cost, solve_with_memo, solve_with_memo_report, MemoSolveReport,
};
pub use recognize::{recognize_component, Recognized};
pub use store::{ComponentSource, Memo, MemoStats};
