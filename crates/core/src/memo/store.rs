//! The sharded, thread-safe component-result cache.
//!
//! Keys are the canonical forms of [`jp_graph::canon`]: isomorphic
//! components (including mirror images) share an entry, so one solve of
//! a `K_{3,4}` block serves every other `K_{3,4}` block in the workload
//! regardless of labeling. Values store the optimal (or best-known)
//! deletion order in *canonical* edge ids, translated back through the
//! component's own canonical form on every hit.
//!
//! **Trust nothing you did not just compute.** Every hit — and every
//! entry loaded from a `--memo-file` — is rebuilt into a scheme and
//! re-validated against [`crate::scheme`]'s verifier before it is
//! served; an entry that fails (stale file, corrupted line, hash
//! collision, a bug elsewhere) degrades to a per-entry skip counted in
//! `memo.reject` / `memo.poisoned`, never to a wrong answer or a panic.

use crate::memo::recognize::recognize_component;
use crate::scheme::PebblingScheme;
use jp_graph::canon::{canonical_form, CanonicalKey};
use jp_graph::BipartiteGraph;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Shard count: enough to keep portfolio workers from serializing on
/// one lock, small enough that an empty memo is nearly free.
const SHARDS: usize = 16;

/// Caps on persisted entries: a `--memo-file` line claiming a larger
/// component than canonicalization would ever produce is corrupt.
const MAX_FILE_VERTICES: u32 = jp_graph::canon::MAX_CANON_VERTICES;
const MAX_FILE_EDGES: usize = 1 << 10;

/// Where a memo-served component answer came from — reported per solve
/// by [`crate::memo::solve_with_memo_report`] so a caller holding one
/// shared `Memo` across many concurrent requests (the jp-serve warm
/// store) can attribute each answer without diffing the global,
/// concurrently-bumped [`MemoStats`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentSource {
    /// A closed-form recognizer answered from structure alone.
    Recognized,
    /// A validated cache hit under the canonical key.
    Cache,
}

/// One cached result: a deletion order in canonical edge ids, its
/// effective cost, and whether the cost is proved optimal (exact DP or
/// closed form) rather than best-known heuristic.
#[derive(Debug, Clone)]
struct MemoEntry {
    order: Vec<usize>,
    cost: usize,
    exact: bool,
}

/// A snapshot of the cache's counters (also emitted as `memo.*` jp-obs
/// counters when tracing is on).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups served from the cache (validated).
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Lookups answered by a closed-form recognizer (no cache needed).
    pub recognized: u64,
    /// Entries inserted or improved.
    pub inserts: u64,
    /// Cache entries that failed re-validation and were dropped.
    pub rejects: u64,
    /// Persisted lines skipped as corrupt during [`Memo::load_jsonl`].
    pub poisoned: u64,
}

impl MemoStats {
    /// Lookups that consulted the cache (hits + misses).
    // audit:allow(obs-coverage) pure arithmetic on an already-captured snapshot
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

/// The cache. Cheap to create; share one per workload (or per process)
/// by reference — all methods take `&self` and are thread-safe.
pub struct Memo {
    shards: Vec<Mutex<HashMap<CanonicalKey, MemoEntry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    recognized: AtomicU64,
    inserts: AtomicU64,
    rejects: AtomicU64,
    poisoned: AtomicU64,
}

impl Default for Memo {
    fn default() -> Self {
        Memo::new()
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A temp-file name next to `target` (same directory, hence the same
/// filesystem, so the rename in [`Memo::save_jsonl`] is atomic). The
/// pid plus a process-wide counter keeps concurrent savers — two
/// threads checkpointing different memos to the same path — from
/// clobbering each other's half-written temp.
fn sibling_temp_path(target: &std::path::Path) -> std::path::PathBuf {
    static SAVE_SEQ: AtomicU64 = AtomicU64::new(0);
    // race:order(uniqueness only: any interleaving of fetch_add yields distinct ids)
    let seq = SAVE_SEQ.fetch_add(1, Ordering::Relaxed);
    let name = target
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "memo.jsonl".to_string());
    target.with_file_name(format!("{name}.tmp.{}.{seq}", std::process::id()))
}

/// The serialized form of one cache entry — one JSON object per line in
/// a `--memo-file`.
#[derive(Serialize, Deserialize)]
struct MemoRecord {
    left: u32,
    right: u32,
    edges: Vec<(u32, u32)>,
    order: Vec<usize>,
    cost: usize,
    exact: bool,
}

impl Memo {
    /// An empty cache.
    // audit:allow(obs-coverage) constructor — lookups and inserts emit the memo counters
    pub fn new() -> Memo {
        Memo {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            recognized: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            rejects: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
        }
    }

    /// Current counter values.
    // audit:allow(obs-coverage) counter snapshot — no solver work to trace
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            // race:order(monotonic statistics; a snapshot mid-run may lag but every counter is exact once workers join)
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            // race:order(same monotonic-statistics snapshot as above)
            recognized: self.recognized.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            // race:order(same monotonic-statistics snapshot as above)
            rejects: self.rejects.load(Ordering::Relaxed),
            poisoned: self.poisoned.load(Ordering::Relaxed),
        }
    }

    /// Cached entries across all shards.
    // audit:allow(obs-coverage) counter snapshot — no solver work to trace
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).len()).sum()
    }

    /// `true` when nothing is cached yet.
    // audit:allow(obs-coverage) counter snapshot — no solver work to trace
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard(&self, key: &CanonicalKey) -> Option<&Mutex<HashMap<CanonicalKey, MemoEntry>>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        self.shards.get((h.finish() % SHARDS as u64) as usize)
    }

    fn bump(&self, counter: &AtomicU64, name: &str) {
        // race:order(monotonic statistic; cache answers are protected by the shard locks, not by this counter)
        counter.fetch_add(1, Ordering::Relaxed);
        if jp_obs::enabled() {
            jp_obs::counter("memo", name, 1);
        }
        if jp_pulse::enabled() {
            // Static names so the live path never allocates; the pulse
            // counters mirror the jp-obs ones 1:1, which is what the
            // sampler's final snapshot is checked against end-to-end.
            let pulse_name = match name {
                "recognized" => "memo.recognized",
                "hit" => "memo.hit",
                "miss" => "memo.miss",
                "insert" => "memo.insert",
                "reject" => "memo.reject",
                "poisoned" => "memo.poisoned",
                _ => "memo.other",
            };
            jp_pulse::counter_add(pulse_name, 1);
        }
    }

    /// Publishes live occupancy gauges: total cached entries and the
    /// imbalance of the fullest shard relative to a perfectly uniform
    /// spread (100 = uniform; 1600 = everything in one of 16 shards).
    fn publish_occupancy(&self) {
        if !jp_pulse::enabled() {
            return;
        }
        let mut total = 0usize;
        let mut largest = 0usize;
        for shard in &self.shards {
            let len = lock(shard).len();
            total += len;
            largest = largest.max(len);
        }
        jp_pulse::gauge_set("memo.occupancy", total as u64);
        if let Some(imbalance) = (largest * SHARDS * 100).checked_div(total) {
            jp_pulse::gauge_set("memo.shard_imbalance_pct", imbalance as u64);
        }
    }

    /// Solves a connected component from structure alone when possible:
    /// closed-form recognizer first, then a validated cache hit. Returns
    /// `(deletion order in this graph's edge ids, effective cost π)`;
    /// `None` sends the caller to the solver ladder. With `exact_only`
    /// set, heuristic cache entries are ignored (recognizers are always
    /// exact) — the mode the exact solver uses so its optimality
    /// guarantee survives memoization.
    // audit:allow(obs-coverage) hot per-component probe — counters cover it; a span per lookup would dwarf the lookup
    pub fn solve_component(
        &self,
        sub: &BipartiteGraph,
        exact_only: bool,
    ) -> Option<(Vec<usize>, usize)> {
        self.solve_component_traced(sub, exact_only)
            .map(|(order, cost, _)| (order, cost))
    }

    /// [`Memo::solve_component`] plus the provenance of the answer —
    /// recognizer or cache — so per-request attribution never has to
    /// diff the shared counters under concurrency.
    // audit:allow(obs-coverage) hot per-component probe — counters cover it; a span per lookup would dwarf the lookup
    pub fn solve_component_traced(
        &self,
        sub: &BipartiteGraph,
        exact_only: bool,
    ) -> Option<(Vec<usize>, usize, ComponentSource)> {
        let _mem = jp_pulse::mem_scope(jp_pulse::MemScope::Memo);
        if let Some(r) = recognize_component(sub) {
            self.bump(&self.recognized, "recognized");
            return Some((r.order, r.cost, ComponentSource::Recognized));
        }
        let form = canonical_form(sub)?;
        let entry = {
            let shard = self.shard(&form.key)?;
            let map = lock(shard);
            match map.get(&form.key) {
                Some(e) if !exact_only || e.exact => e.clone(),
                _ => {
                    drop(map);
                    self.bump(&self.misses, "miss");
                    return None;
                }
            }
        };
        // Translate the canonical order into this component's labels and
        // re-validate from scratch before serving it (satellite 3: a hit
        // must never return a stale or mislabeled answer).
        let order: Option<Vec<usize>> = entry
            .order
            .iter()
            .map(|&k| form.original_edge(sub, k))
            .collect();
        let checked = order.and_then(|order| {
            let scheme = PebblingScheme::from_edge_sequence(sub, &order).ok()?;
            scheme.validate(sub).ok()?;
            let cost = scheme.effective_cost(sub);
            // an exact entry must reproduce its recorded cost bit for
            // bit; a heuristic entry may only be served at its recorded
            // cost or better
            if (entry.exact && cost != entry.cost) || cost > entry.cost {
                return None;
            }
            Some((order, cost))
        });
        match checked {
            Some((order, cost)) => {
                self.bump(&self.hits, "hit");
                Some((order, cost, ComponentSource::Cache))
            }
            None => {
                self.bump(&self.rejects, "reject");
                self.bump(&self.misses, "miss");
                None
            }
        }
    }

    /// Records a freshly solved component: `order` is a deletion order
    /// in `sub`'s edge ids, `exact` whether its cost is proved optimal.
    /// The entry is stored under the canonical key (when the component
    /// canonicalizes) and replaces an existing entry only when strictly
    /// better (exact beats heuristic, then lower cost).
    // audit:allow(obs-coverage) hot per-component record — counters cover it; see solve_component
    pub fn record_component(&self, sub: &BipartiteGraph, order: &[usize], exact: bool) {
        let _mem = jp_pulse::mem_scope(jp_pulse::MemScope::Memo);
        let Some(form) = canonical_form(sub) else {
            return;
        };
        // Only record orders that build a valid covering scheme — the
        // cost stored is the one the rebuilt scheme actually achieves.
        let Ok(scheme) = PebblingScheme::from_edge_sequence(sub, order) else {
            return;
        };
        if scheme.validate(sub).is_err() {
            return;
        }
        let cost = scheme.effective_cost(sub);
        let canon_order: Option<Vec<usize>> =
            order.iter().map(|&e| form.canonical_edge(sub, e)).collect();
        let Some(canon_order) = canon_order else {
            return;
        };
        let Some(shard) = self.shard(&form.key) else {
            return;
        };
        let mut map = lock(shard);
        let better = match map.get(&form.key) {
            Some(old) => {
                (exact, std::cmp::Reverse(cost)) > (old.exact, std::cmp::Reverse(old.cost))
            }
            None => true,
        };
        if better {
            map.insert(
                form.key,
                MemoEntry {
                    order: canon_order,
                    cost,
                    exact,
                },
            );
            drop(map);
            self.bump(&self.inserts, "insert");
            self.publish_occupancy();
        }
    }

    /// Serializes every entry as one JSON object per line. Entries are
    /// written in sorted key order so the file is deterministic.
    ///
    /// The write is atomic with respect to crashes: the lines go to a
    /// same-directory temp file first (so the rename cannot cross a
    /// filesystem boundary), are flushed and fsynced, and only then
    /// renamed over `path`. A process killed mid-save — including
    /// `kill -9` during a jp-serve shutdown checkpoint — leaves either
    /// the old complete file or the new complete file, never a
    /// truncated one; at worst a `.tmp.<pid>` orphan remains, which no
    /// loader ever reads.
    // audit:allow(obs-coverage) persistence I/O — no solver work to trace
    pub fn save_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut entries: Vec<(CanonicalKey, MemoEntry)> = Vec::new();
        for shard in &self.shards {
            let map = lock(shard);
            entries.extend(map.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::new();
        for (key, entry) in entries {
            let rec = MemoRecord {
                left: key.left,
                right: key.right,
                edges: key.edges,
                order: entry.order,
                cost: entry.cost,
                exact: entry.exact,
            };
            let line = serde_json::to_string(&rec)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            out.push_str(&line);
            out.push('\n');
        }
        let tmp = sibling_temp_path(path);
        let write_result = (|| -> std::io::Result<()> {
            let mut file = std::fs::File::create(&tmp)?;
            std::io::Write::write_all(&mut file, out.as_bytes())?;
            // Flushed data must be durable before the rename makes it
            // the cache: rename-over-old with unsynced contents can
            // surface as an empty file after a power cut.
            file.sync_all()?;
            std::fs::rename(&tmp, path)
        })();
        if write_result.is_err() {
            // Leave no temp droppings behind on failure.
            let _ = std::fs::remove_file(&tmp);
        }
        write_result
    }

    /// Loads entries from a JSONL file previously written by
    /// [`Memo::save_jsonl`] (or by anyone — nothing in the file is
    /// trusted). Each line is independently parsed, bounds-checked,
    /// re-canonicalized and scheme-verified; a line failing any step is
    /// skipped and counted (`memo.poisoned`), never a panic. Returns
    /// `(loaded, skipped)`.
    // audit:allow(obs-coverage) persistence I/O — per-entry verification emits the memo counters
    pub fn load_jsonl(&self, path: &std::path::Path) -> std::io::Result<(usize, usize)> {
        let text = std::fs::read_to_string(path)?;
        let mut loaded = 0usize;
        let mut skipped = 0usize;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            if self.load_record(line) {
                loaded += 1;
            } else {
                skipped += 1;
                self.bump(&self.poisoned, "poisoned");
            }
        }
        Ok((loaded, skipped))
    }

    /// Verifies and inserts one persisted line. `false` = corrupt.
    fn load_record(&self, line: &str) -> bool {
        let Ok(rec) = serde_json::from_str::<MemoRecord>(line) else {
            return false;
        };
        // Structural bounds before touching graph construction (whose
        // constructor asserts on out-of-range endpoints).
        if rec.left == 0
            || rec.right == 0
            || rec.left.saturating_add(rec.right) > MAX_FILE_VERTICES
            || rec.edges.is_empty()
            || rec.edges.len() > MAX_FILE_EDGES
            || rec.order.len() != rec.edges.len()
            || rec
                .edges
                .iter()
                .any(|&(l, r)| l >= rec.left || r >= rec.right)
            || rec.order.iter().any(|&e| e >= rec.edges.len())
        {
            return false;
        }
        let g = BipartiteGraph::new(rec.left, rec.right, rec.edges.clone());
        if g.edges() != rec.edges.as_slice() {
            return false; // unsorted or duplicated edges: not a canonical key
        }
        // The file claims (left, right, edges) is canonical; verify by
        // re-canonicalizing the graph it describes.
        let Some(form) = canonical_form(&g) else {
            return false;
        };
        if form.key.left != rec.left || form.key.right != rec.right || form.key.edges != rec.edges {
            return false;
        }
        // Rebuild and verify the claimed scheme on the canonical graph.
        let Ok(scheme) = PebblingScheme::from_edge_sequence(&g, &rec.order) else {
            return false;
        };
        if scheme.validate(&g).is_err() {
            return false;
        }
        let cost = scheme.effective_cost(&g);
        if (rec.exact && cost != rec.cost) || cost > rec.cost {
            return false;
        }
        // record_component re-translates through the graph's own form,
        // which lands back on the same key.
        self.record_component(&g, &rec.order, rec.exact);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use jp_graph::generators;

    fn relabel(g: &BipartiteGraph, lshift: u32, rshift: u32) -> BipartiteGraph {
        let edges = g
            .edges()
            .iter()
            .map(|&(l, r)| {
                (
                    (l + lshift) % g.left_count(),
                    (r + rshift) % g.right_count(),
                )
            })
            .collect();
        BipartiteGraph::new(g.left_count(), g.right_count(), edges)
    }

    #[test]
    fn record_then_hit_isomorphic_copy() {
        let memo = Memo::new();
        let g = generators::random_connected_bipartite(4, 4, 9, 7);
        // random graphs are (usually) no closed-form family; force the
        // cache path by checking the recognizer first
        if recognize_component(&g).is_some() {
            return; // seed happens to be a family; nothing to test here
        }
        assert!(memo.solve_component(&g, false).is_none());
        let s = exact::optimal_scheme(&g).unwrap();
        let order: Vec<usize> = s.deletion_order(&g).into_iter().flatten().collect();
        memo.record_component(&g, &order, true);
        assert_eq!(memo.len(), 1);
        // same graph hits
        let (o1, c1) = memo.solve_component(&g, true).unwrap();
        assert_eq!(c1, exact::optimal_effective_cost(&g).unwrap());
        let s1 = PebblingScheme::from_edge_sequence(&g, &o1).unwrap();
        assert_eq!(s1.effective_cost(&g), c1);
        // a relabeled isomorphic copy hits the same entry
        let h = relabel(&g, 2, 3);
        let (o2, c2) = memo.solve_component(&h, true).unwrap();
        assert_eq!(c2, c1);
        let s2 = PebblingScheme::from_edge_sequence(&h, &o2).unwrap();
        s2.validate(&h).unwrap();
        assert_eq!(s2.effective_cost(&h), c1);
        let st = memo.stats();
        assert_eq!((st.hits, st.inserts), (2, 1));
    }

    #[test]
    fn recognized_families_bypass_the_cache() {
        let memo = Memo::new();
        let g = generators::complete_bipartite(6, 7); // beyond the DP wall
        let (order, cost) = memo.solve_component(&g, true).unwrap();
        assert_eq!(cost, 42);
        let s = PebblingScheme::from_edge_sequence(&g, &order).unwrap();
        s.validate(&g).unwrap();
        assert_eq!(s.effective_cost(&g), 42);
        assert!(memo.is_empty(), "recognizers never populate the cache");
        assert_eq!(memo.stats().recognized, 1);
    }

    #[test]
    fn exact_only_ignores_heuristic_entries() {
        let memo = Memo::new();
        let g = generators::random_connected_bipartite(4, 4, 10, 11);
        if recognize_component(&g).is_some() {
            return;
        }
        let s = crate::approx::pebble_dfs_partition(&g).unwrap();
        let order: Vec<usize> = s.deletion_order(&g).into_iter().flatten().collect();
        memo.record_component(&g, &order, false);
        assert!(memo.solve_component(&g, true).is_none());
        assert!(memo.solve_component(&g, false).is_some());
    }

    #[test]
    fn exact_entries_replace_heuristic_ones() {
        let memo = Memo::new();
        let g = generators::random_connected_bipartite(4, 4, 10, 11);
        if recognize_component(&g).is_some() {
            return;
        }
        let heur = crate::approx::pebble_dfs_partition(&g).unwrap();
        let horder: Vec<usize> = heur.deletion_order(&g).into_iter().flatten().collect();
        memo.record_component(&g, &horder, false);
        let opt = exact::optimal_scheme(&g).unwrap();
        let oorder: Vec<usize> = opt.deletion_order(&g).into_iter().flatten().collect();
        memo.record_component(&g, &oorder, true);
        let (_, cost) = memo.solve_component(&g, true).unwrap();
        assert_eq!(cost, exact::optimal_effective_cost(&g).unwrap());
        // a later, worse heuristic does not clobber the exact entry
        memo.record_component(&g, &horder, false);
        let (_, cost2) = memo.solve_component(&g, true).unwrap();
        assert_eq!(cost2, cost);
    }

    #[test]
    fn jsonl_round_trip_and_poisoned_lines() {
        let memo = Memo::new();
        let g = generators::random_connected_bipartite(4, 4, 9, 7);
        if recognize_component(&g).is_some() {
            return;
        }
        let s = exact::optimal_scheme(&g).unwrap();
        let order: Vec<usize> = s.deletion_order(&g).into_iter().flatten().collect();
        memo.record_component(&g, &order, true);
        let dir = std::env::temp_dir().join(format!("jp_memo_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("memo.jsonl");
        memo.save_jsonl(&path).unwrap();

        // clean reload serves the entry
        let fresh = Memo::new();
        let (loaded, skipped) = fresh.load_jsonl(&path).unwrap();
        assert_eq!((loaded, skipped), (1, 0));
        assert!(fresh.solve_component(&g, true).is_some());

        // poison the file: garbage line, bad JSON field types, an
        // out-of-range edge, and a cost lie — all skipped cleanly
        let good = std::fs::read_to_string(&path).unwrap();
        let lied = good.replace("\"cost\":", "\"cost\": 0 , \"old_cost\":");
        let poisoned_text = format!(
            "not json at all\n{{\"left\": 1}}\n\
             {{\"left\":2,\"right\":2,\"edges\":[[0,9]],\"order\":[0],\"cost\":1,\"exact\":true}}\n\
             {lied}{good}"
        );
        std::fs::write(&path, poisoned_text).unwrap();
        let reloaded = Memo::new();
        let (loaded, skipped) = reloaded.load_jsonl(&path).unwrap();
        assert_eq!(loaded, 1, "the intact line still loads");
        assert_eq!(skipped, 4, "every corrupt line skipped");
        assert_eq!(reloaded.stats().poisoned, 4);
        assert!(reloaded.solve_component(&g, true).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_canonical_file_entries_are_rejected() {
        // a record whose key is NOT in canonical form (valid graph, but
        // shifted labels) must be rejected — otherwise two labelings of
        // one component would occupy two cache slots with inconsistent
        // keys
        let g = generators::random_connected_bipartite(4, 4, 9, 7);
        let form = jp_graph::canon::canonical_form(&g).unwrap();
        let shifted = relabel(&g, 1, 1);
        if shifted.edges() == form.key.edges.as_slice() {
            return; // astronomically unlikely: the shift IS canonical
        }
        let rec = format!(
            "{{\"left\":{},\"right\":{},\"edges\":{:?},\"order\":{:?},\"cost\":{},\"exact\":false}}",
            shifted.left_count(),
            shifted.right_count(),
            shifted.edges().iter().map(|&(l, r)| [l, r]).collect::<Vec<_>>(),
            (0..shifted.edge_count()).collect::<Vec<_>>(),
            2 * shifted.edge_count(),
        );
        let memo = Memo::new();
        assert!(!memo.load_record(&rec.replace(' ', "")));
    }

    /// A memo with one exact entry for `g`, for the atomic-save tests.
    fn one_entry_memo(g: &BipartiteGraph) -> Memo {
        let memo = Memo::new();
        let s = exact::optimal_scheme(g).unwrap();
        let order: Vec<usize> = s.deletion_order(g).into_iter().flatten().collect();
        memo.record_component(g, &order, true);
        memo
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_droppings() {
        let g = generators::random_connected_bipartite(4, 4, 9, 7);
        if recognize_component(&g).is_some() {
            return;
        }
        let dir = std::env::temp_dir().join(format!("jp_memo_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("memo.jsonl");
        let memo = one_entry_memo(&g);
        memo.save_jsonl(&path).unwrap();
        let first = std::fs::read_to_string(&path).unwrap();

        // Simulate a crash mid-checkpoint: a partially-written temp file
        // sits next to the target (as `kill -9` between create and
        // rename would leave it). The target must be untouched — the
        // temp never shadows it — and a reload still serves the entry.
        let crashed_tmp = sibling_temp_path(&path);
        let half = &first[..first.len() / 2];
        std::fs::write(&crashed_tmp, half).unwrap();
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            first,
            "a partial temp file must never shadow the saved cache"
        );
        let reloaded = Memo::new();
        let (loaded, skipped) = reloaded.load_jsonl(&path).unwrap();
        assert_eq!((loaded, skipped), (1, 0));
        assert!(reloaded.solve_component(&g, true).is_some());

        // A subsequent full save replaces the target atomically and
        // cleans up after itself: the only leftover temp is the one we
        // planted to simulate the crash.
        memo.save_jsonl(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), first);
        let temps: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert_eq!(
            temps,
            vec![crashed_tmp
                .file_name()
                .unwrap()
                .to_string_lossy()
                .into_owned()],
            "save must not leave its own temp files behind"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_save_keeps_the_old_cache_intact() {
        let g = generators::random_connected_bipartite(4, 4, 9, 7);
        if recognize_component(&g).is_some() {
            return;
        }
        let dir = std::env::temp_dir().join(format!("jp_memo_atomicfail_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("memo.jsonl");
        let memo = one_entry_memo(&g);
        memo.save_jsonl(&path).unwrap();
        let before = std::fs::read_to_string(&path).unwrap();

        // Saving into a directory that does not exist fails before any
        // rename could happen; the original file is untouched.
        let bad = dir.join("no_such_subdir").join("memo.jsonl");
        assert!(memo.save_jsonl(&bad).is_err());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), before);
        std::fs::remove_dir_all(&dir).ok();
    }
}
