//! Structural recognizers: closed-form optimal schemes for the families
//! of §2–§3, answered with zero search at any size.
//!
//! | family | optimal `π` | source |
//! |---|---|---|
//! | `K_{k,l}` | `m` (boustrophedon) | Lemma 3.2 |
//! | matching | `m` (`π̂ = 2m`) | Lemma 2.4 |
//! | path / even cycle | `m` (`L(G)` is a path/cycle) | Prop 2.1 |
//! | spider `G_n` | `2n + ⌈n/2⌉ − 1` | Theorem 3.3 |
//!
//! A recognized component never touches the cache or the exponential
//! ladder — the scheme is written down directly from the family's
//! structure, exactly as [`crate::families`] does for generated
//! instances, but here for *arbitrary labelings* arriving from real
//! join graphs.

use jp_graph::{properties, BipartiteGraph, Side, Vertex};

/// A component answered by a closed form: an optimal edge deletion
/// order and its effective cost `π`, both exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recognized {
    /// Which closed form fired (for `--stats` and tests).
    pub family: &'static str,
    /// Optimal deletion order, in this graph's edge ids.
    pub order: Vec<usize>,
    /// The component's optimal effective cost `π`.
    pub cost: usize,
}

/// Tries each closed-form family against a connected component (no
/// isolated vertices). Returns `None` when no family matches — the
/// caller falls through to the cache and the solver ladder.
// audit:allow(obs-coverage) pure structural probe — counters are emitted by the memo store's lookup path
pub fn recognize_component(g: &BipartiteGraph) -> Option<Recognized> {
    if g.edge_count() == 0 {
        return None;
    }
    recognize_complete_bipartite(g)
        .or_else(|| recognize_matching(g))
        .or_else(|| recognize_path(g))
        .or_else(|| recognize_cycle(g))
        .or_else(|| recognize_spider(g))
}

/// Lemma 3.2: `K_{k,l}` pebbles perfectly by boustrophedon — sweep each
/// left vertex's edges alternately forward and backward so consecutive
/// rows meet at a shared right vertex.
fn recognize_complete_bipartite(g: &BipartiteGraph) -> Option<Recognized> {
    if !properties::is_complete_bipartite(g) || g.has_isolated_vertices() {
        return None;
    }
    let (k, l) = (g.left_count() as usize, g.right_count() as usize);
    let m = g.edge_count();
    // all k·l pairs present and edges are sorted, so edge (a, b) has id
    // a·l + b; the boustrophedon visits them row by row, snaking.
    let mut order = Vec::with_capacity(m);
    for a in 0..k {
        if a % 2 == 0 {
            order.extend((0..l).map(|b| a * l + b));
        } else {
            order.extend((0..l).rev().map(|b| a * l + b));
        }
    }
    Some(Recognized {
        family: "complete_bipartite",
        order,
        cost: m,
    })
}

/// Lemma 2.4: a matching costs `π̂ = 2m` (`π = m`); any order is
/// optimal. Within a single connected component this is just the
/// one-edge graph, but the recognizer accepts the general shape so it
/// also serves whole graphs.
fn recognize_matching(g: &BipartiteGraph) -> Option<Recognized> {
    if !properties::is_matching(g) || g.has_isolated_vertices() {
        return None;
    }
    let m = g.edge_count();
    Some(Recognized {
        family: "matching",
        order: (0..m).collect(),
        cost: m,
    })
}

/// The edge ids incident to `v`, in neighbor order.
fn incident_edges(g: &BipartiteGraph, v: Vertex) -> Vec<usize> {
    let ids = match v.side {
        Side::Left => g
            .left_neighbors(v.index)
            .iter()
            .filter_map(|&r| g.edge_index(v.index, r))
            .collect(),
        Side::Right => g
            .right_neighbors(v.index)
            .iter()
            .filter_map(|&l| g.edge_index(l, v.index))
            .collect(),
    };
    ids
}

/// The endpoint of edge `e` that is not `v`.
fn other_end(g: &BipartiteGraph, e: usize, v: Vertex) -> Option<Vertex> {
    let (a, b) = g.edge_vertices(e);
    if a == v {
        Some(b)
    } else if b == v {
        Some(a)
    } else {
        None
    }
}

/// Walks the unique trail from `start`, consuming every edge exactly
/// once. `None` if the walk strands before covering the graph (not a
/// path/cycle after all).
fn walk_all_edges(g: &BipartiteGraph, start: Vertex) -> Option<Vec<usize>> {
    let m = g.edge_count();
    let mut used = vec![false; m];
    let mut order = Vec::with_capacity(m);
    let mut at = start;
    for _ in 0..m {
        let e = incident_edges(g, at)
            .into_iter()
            .find(|&e| used.get(e) == Some(&false))?;
        if let Some(slot) = used.get_mut(e) {
            *slot = true;
        }
        order.push(e);
        at = other_end(g, e, at)?;
    }
    Some(order)
}

/// Proposition 2.1 regime: `L(path)` is a path, so walking end to end
/// pebbles with zero jumps — `π = m`.
fn recognize_path(g: &BipartiteGraph) -> Option<Recognized> {
    let (lo, hi) = properties::degree_range(g)?;
    if lo != 1 || hi > 2 {
        return None;
    }
    let m = g.edge_count();
    if m + 1 != g.vertex_count() as usize {
        return None; // a tree exactly when m = n − 1; with Δ ≤ 2, a path
    }
    let start = g.vertices().find(|&v| g.degree(v) == 1)?;
    let order = walk_all_edges(g, start)?;
    Some(Recognized {
        family: "path",
        order,
        cost: m,
    })
}

/// `L(even cycle)` is a cycle: any break point gives a jump-free
/// Hamiltonian path, so `π = m`.
fn recognize_cycle(g: &BipartiteGraph) -> Option<Recognized> {
    let (lo, hi) = properties::degree_range(g)?;
    if lo != 2 || hi != 2 {
        return None;
    }
    let m = g.edge_count();
    if m != g.vertex_count() as usize {
        return None; // β₁ = 1 with all degrees 2 ⇔ one cycle
    }
    let start = g.vertices().next()?;
    let order = walk_all_edges(g, start)?;
    Some(Recognized {
        family: "even_cycle",
        order,
        cost: m,
    })
}

/// Theorem 3.3: the spider `G_n` — a centre joined to `n` middle
/// vertices, each carrying one pendant foot. Legs are paired so each
/// jump-free run covers two legs; `π = 2n + ⌈n/2⌉ − 1` (`n ≥ 3`).
fn recognize_spider(g: &BipartiteGraph) -> Option<Recognized> {
    let n_vertices = g.vertex_count() as usize;
    let m = g.edge_count();
    if n_vertices < 7 || !m.is_multiple_of(2) || n_vertices != m + 1 {
        return None;
    }
    let n = m / 2; // candidate leg count; needs ≥ 3 (below, paths match first)
    if n < 3 {
        return None;
    }
    let center = g.vertices().find(|&v| g.degree(v) == n)?;
    // legs in centre-neighbor order: spoke (centre—middle), then foot
    // (middle—foot); every middle must have degree 2 and its far
    // endpoint degree 1.
    let mut spokes = Vec::with_capacity(n);
    let mut feet = Vec::with_capacity(n);
    for spoke in incident_edges(g, center) {
        let middle = other_end(g, spoke, center)?;
        if g.degree(middle) != 2 {
            return None;
        }
        let foot_edge = incident_edges(g, middle)
            .into_iter()
            .find(|&e| e != spoke)?;
        let foot = other_end(g, foot_edge, middle)?;
        if g.degree(foot) != 1 {
            return None;
        }
        spokes.push(spoke);
        feet.push(foot_edge);
    }
    if spokes.len() != n {
        return None;
    }
    // Pair consecutive legs exactly as families::spider_optimal_scheme:
    // (foot_i, spoke_i, spoke_{i+1}, foot_{i+1}), leftover leg last.
    let mut order = Vec::with_capacity(m);
    let mut i = 0;
    while i < n {
        let (Some(&si), Some(&fi)) = (spokes.get(i), feet.get(i)) else {
            return None;
        };
        if i + 1 < n {
            let (Some(&sj), Some(&fj)) = (spokes.get(i + 1), feet.get(i + 1)) else {
                return None;
            };
            order.extend([fi, si, sj, fj]);
            i += 2;
        } else {
            order.extend([si, fi]);
            i += 1;
        }
    }
    let cost = crate::families::spider_optimal_cost(n as u64) as usize;
    Some(Recognized {
        family: "spider",
        order,
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use crate::scheme::PebblingScheme;
    use jp_graph::generators;

    /// The recognizer's order must build a valid scheme whose effective
    /// cost equals both the claimed cost and the exact optimum.
    fn check(g: &BipartiteGraph, family: &str) {
        let r = recognize_component(g).unwrap_or_else(|| panic!("{g} not recognized"));
        assert_eq!(r.family, family, "{g}");
        let s = PebblingScheme::from_edge_sequence(g, &r.order).unwrap();
        s.validate(g).unwrap();
        assert_eq!(s.effective_cost(g), r.cost, "{g} claimed cost");
        if g.edge_count() <= exact::MAX_EXACT_EDGES {
            assert_eq!(
                r.cost,
                exact::optimal_effective_cost(g).unwrap(),
                "{g} optimality"
            );
        }
    }

    #[test]
    fn complete_bipartite_any_shape() {
        for (k, l) in [(1, 1), (1, 6), (2, 3), (3, 3), (4, 4), (5, 5), (7, 9)] {
            check(&generators::complete_bipartite(k, l), "complete_bipartite");
        }
    }

    #[test]
    fn paths_cycles_matchings() {
        // the 1- and 2-edge paths are K_{1,1} and K_{2,1}, so the
        // complete-bipartite recognizer claims them first (same cost m)
        for m in [1u32, 2, 5, 12, 41] {
            let family = if m <= 2 { "complete_bipartite" } else { "path" };
            check(&generators::path(m), family);
        }
        // C_4 = K_{2,2}: again claimed by the complete-bipartite form
        for k in [2u32, 3, 7, 30] {
            let family = if k == 2 {
                "complete_bipartite"
            } else {
                "even_cycle"
            };
            check(&generators::cycle(k), family);
        }
        check(&generators::matching(4), "matching");
    }

    #[test]
    fn spiders_beyond_the_exact_wall() {
        for n in [3u32, 4, 5, 12, 50] {
            let g = generators::spider(n);
            let r = recognize_component(&g).unwrap();
            assert_eq!(r.family, "spider", "G_{n}");
            let s = PebblingScheme::from_edge_sequence(&g, &r.order).unwrap();
            s.validate(&g).unwrap();
            assert_eq!(
                s.effective_cost(&g) as u64,
                crate::families::spider_optimal_cost(n as u64),
                "G_{n}"
            );
        }
    }

    #[test]
    fn recognizers_survive_relabeling() {
        // shuffle vertex names; the closed forms must still fire
        let g = generators::spider(6);
        let lperm: Vec<u32> = (0..g.left_count())
            .map(|i| (i + 3) % g.left_count())
            .collect();
        let rperm: Vec<u32> = (0..g.right_count()).rev().collect();
        let edges = g
            .edges()
            .iter()
            .map(|&(l, r)| (lperm[l as usize], rperm[r as usize]))
            .collect();
        let shuffled = BipartiteGraph::new(g.left_count(), g.right_count(), edges);
        check(&shuffled, "spider");
    }

    #[test]
    fn near_misses_are_rejected() {
        // crown: dense but not complete bipartite, degree-regular but
        // not a cycle (β₁ > 1)
        assert!(recognize_component(&generators::crown(4)).is_none());
        // caterpillar: tree with Δ = 3 but not a spider
        assert!(recognize_component(&generators::caterpillar(5)).is_none());
        // random connected graph
        let g = generators::random_connected_bipartite(4, 4, 10, 2);
        if let Some(r) = recognize_component(&g) {
            // if it happens to be a family, the scheme must still check out
            let s = PebblingScheme::from_edge_sequence(&g, &r.order).unwrap();
            assert_eq!(s.effective_cost(&g), r.cost);
        }
        // empty graph
        assert!(recognize_component(&BipartiteGraph::new(2, 2, Vec::new())).is_none());
    }
}
