//! The workload entry point: solve a whole (possibly disconnected) join
//! graph with the memo in front of the solver ladder.
//!
//! Per connected component (additivity, Lemma 2.2):
//!
//! 1. recognizer / validated cache hit via [`Memo::solve_component`];
//! 2. on a miss, the full portfolio race
//!    ([`crate::portfolio::portfolio_scheme_memo`], which also consults
//!    the memo inside its exact strategy), recording the fresh result
//!    for every later isomorphic copy.
//!
//! Across a workload of repeated shapes — equijoin block unions, skewed
//! key distributions, the §2–§3 families at many sizes — almost every
//! component after the first of its kind is served from the cache.

use crate::memo::store::{ComponentSource, Memo};
use crate::scheme::PebblingScheme;
use crate::{bounds, portfolio, PebbleError};
use jp_graph::{BipartiteGraph, ComponentMap};

/// Per-solve provenance of a [`solve_with_memo_report`] run: how many
/// components the graph had and how each was served. Unlike
/// [`crate::memo::MemoStats`] — global counters a shared memo bumps from
/// every thread — this report belongs to one solve, so concurrent
/// callers (jp-serve requests against one warm store) get exact
/// per-request attribution with no delta-diffing races.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoSolveReport {
    /// Connected components in the solved graph.
    pub components: u64,
    /// Components answered by a closed-form recognizer.
    pub recognized: u64,
    /// Components served from the cache (validated hits).
    pub hits: u64,
    /// Components solved fresh by the portfolio race.
    pub fresh: u64,
}

impl MemoSolveReport {
    /// Components served without running the solver ladder.
    // audit:allow(obs-coverage) pure arithmetic on an already-built report
    pub fn served(&self) -> u64 {
        self.recognized + self.hits
    }
}

/// Solves `g` component by component through the memo, racing the
/// portfolio only on cache misses. The scheme is equivalent to the
/// memo-less portfolio's — on every recognized family and every exact
/// cache hit it is *optimal* — and each fresh solve is recorded so
/// isomorphic components later in the workload become hash lookups.
// audit:allow(obs-coverage) thin wrapper — solve_with_memo_report opens the memo.solve span
pub fn solve_with_memo(
    g: &BipartiteGraph,
    memo: &Memo,
    threads: usize,
) -> Result<PebblingScheme, PebbleError> {
    solve_with_memo_report(g, memo, threads).map(|(scheme, _)| scheme)
}

/// [`solve_with_memo`] plus a per-solve [`MemoSolveReport`] saying how
/// each component was served. This is the re-entrant form: many threads
/// may call it against one shared `Memo` and each gets the provenance
/// of its own request only.
pub fn solve_with_memo_report(
    g: &BipartiteGraph,
    memo: &Memo,
    threads: usize,
) -> Result<(PebblingScheme, MemoSolveReport), PebbleError> {
    let _span = jp_obs::span("memo", "solve");
    let cm = ComponentMap::new(g);
    if jp_obs::enabled() {
        jp_obs::counter("memo", "components", u64::from(cm.count));
    }
    let mut report = MemoSolveReport {
        components: u64::from(cm.count),
        ..MemoSolveReport::default()
    };
    let mut order = Vec::with_capacity(g.edge_count());
    for edges in cm.edges_by_component() {
        let sub = g.edge_subgraph(&edges);
        let sub_order = match memo.solve_component_traced(&sub, false) {
            Some((o, _, ComponentSource::Recognized)) => {
                report.recognized += 1;
                o
            }
            Some((o, _, ComponentSource::Cache)) => {
                report.hits += 1;
                o
            }
            None => {
                report.fresh += 1;
                let scheme = portfolio::portfolio_scheme_memo(&sub, threads, Some(memo))?;
                let o: Vec<usize> = scheme.deletion_order(&sub).into_iter().flatten().collect();
                // proved optimal exactly when the certified floor is met
                let exact = scheme.effective_cost(&sub) == bounds::best_lower_bound(&sub);
                memo.record_component(&sub, &o, exact);
                o
            }
        };
        // sub edge ids index into this component's original edge list;
        // any inconsistency is caught by from_edge_sequence below, which
        // rejects an order that is not a permutation of all edges.
        order.extend(sub_order.iter().filter_map(|&e| edges.get(e).copied()));
    }
    Ok((PebblingScheme::from_edge_sequence(g, &order)?, report))
}

/// The effective cost `π(G)` of the memoized solve.
// audit:allow(obs-coverage) thin wrapper — solve_with_memo opens the memo.solve span
pub fn memoized_effective_cost(
    g: &BipartiteGraph,
    memo: &Memo,
    threads: usize,
) -> Result<usize, PebbleError> {
    Ok(solve_with_memo(g, memo, threads)?.effective_cost(g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portfolio::portfolio_effective_cost;
    use jp_graph::generators;

    #[test]
    fn memoized_cost_matches_fresh_cost() {
        let memo = Memo::new();
        for g in [
            generators::spider(5),
            generators::complete_bipartite(3, 4),
            generators::random_connected_bipartite(4, 4, 10, 3),
            generators::matching(3).disjoint_union(&generators::path(4)),
        ] {
            let fresh = portfolio_effective_cost(&g, 2).unwrap();
            assert_eq!(memoized_effective_cost(&g, &memo, 2).unwrap(), fresh, "{g}");
            // second solve is served from recognizers/cache, same cost
            assert_eq!(memoized_effective_cost(&g, &memo, 2).unwrap(), fresh, "{g}");
        }
    }

    #[test]
    fn repeated_components_hit_the_cache() {
        let memo = Memo::new();
        let block = generators::random_connected_bipartite(4, 4, 9, 7);
        let mut g = block.clone();
        for _ in 0..5 {
            g = g.disjoint_union(&block);
        }
        let s = solve_with_memo(&g, &memo, 2).unwrap();
        s.validate(&g).unwrap();
        assert_eq!(
            s.effective_cost(&g),
            6 * portfolio_effective_cost(&block, 2).unwrap()
        );
        let st = memo.stats();
        // first copy missed (or was recognized); the other five hit
        assert!(
            st.hits + st.recognized >= 5,
            "expected ≥5 cache/recognizer serves, got {st:?}"
        );
    }

    #[test]
    fn solve_report_attributes_each_component() {
        let memo = Memo::new();
        let block = generators::random_connected_bipartite(4, 4, 9, 7);
        let g = generators::spider(5)
            .disjoint_union(&block)
            .disjoint_union(&block);
        let (s, rep) = solve_with_memo_report(&g, &memo, 1).unwrap();
        s.validate(&g).unwrap();
        assert_eq!(rep.components, 3);
        assert_eq!(rep.recognized, 1, "the spider has a closed form");
        // first block copy solved fresh, the isomorphic repeat hits
        assert_eq!((rep.fresh, rep.hits), (1, 1), "{rep:?}");
        assert_eq!(rep.served(), 2);
        // a second full solve of the same graph is served end to end
        let (_, rep2) = solve_with_memo_report(&g, &memo, 1).unwrap();
        assert_eq!(rep2.fresh, 0, "{rep2:?}");
        assert_eq!(rep2.served(), 3);
    }
}
