//! Scheme statistics and comparison reports for the experiment harness.

use crate::bounds;
use crate::scheme::PebblingScheme;
use jp_graph::{betti_number, BipartiteGraph};
use std::fmt;

/// A summary of one scheme against one graph.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeReport {
    /// Number of edges `m` (= join output size).
    pub edges: usize,
    /// Connected components containing edges, `β₀`.
    pub betti: u32,
    /// Total cost `π̂(P)`.
    pub total_cost: usize,
    /// Effective cost `π(P)`.
    pub effective_cost: usize,
    /// Configurations that delete no fresh edge.
    pub jumps: usize,
    /// `π(P) / m` — 1.0 means a perfect pebbling (Definition 2.3).
    pub ratio_to_m: f64,
    /// `π(P)` divided by the best known lower bound on `π(G)`.
    pub ratio_to_lower_bound: f64,
}

impl SchemeReport {
    /// Builds the report; the scheme must be valid for `g`.
    pub fn new(g: &BipartiteGraph, scheme: &PebblingScheme) -> Self {
        debug_assert!(scheme.validate(g).is_ok());
        let m = g.edge_count();
        let eff = scheme.effective_cost(g);
        let lb = bounds::best_lower_bound(g);
        SchemeReport {
            edges: m,
            betti: betti_number(g),
            total_cost: scheme.cost(),
            effective_cost: eff,
            jumps: scheme.jumps(g),
            ratio_to_m: if m == 0 { 1.0 } else { eff as f64 / m as f64 },
            ratio_to_lower_bound: if lb == 0 { 1.0 } else { eff as f64 / lb as f64 },
        }
    }

    /// Whether the scheme is perfect (`π = m`, Definition 2.3).
    pub fn is_perfect(&self) -> bool {
        self.effective_cost == self.edges
    }
}

impl fmt::Display for SchemeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "m={} β₀={} π̂={} π={} jumps={} π/m={:.3}",
            self.edges,
            self.betti,
            self.total_cost,
            self.effective_cost,
            self.jumps,
            self.ratio_to_m
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::equijoin::pebble_equijoin;
    use crate::approx::nearest_neighbor::pebble_nearest_neighbor;
    use jp_graph::generators;

    #[test]
    fn perfect_scheme_reports_ratio_one() {
        let g = generators::complete_bipartite(3, 4);
        let s = pebble_equijoin(&g).unwrap();
        let r = SchemeReport::new(&g, &s);
        assert!(r.is_perfect());
        assert_eq!(r.ratio_to_m, 1.0);
        assert_eq!(r.jumps, 0);
        assert_eq!(r.betti, 1);
        assert_eq!(r.total_cost, 13);
    }

    #[test]
    fn imperfect_scheme_reports_jumps() {
        let g = generators::spider(4);
        let s = pebble_nearest_neighbor(&g).unwrap();
        let r = SchemeReport::new(&g, &s);
        assert!(r.effective_cost >= r.edges);
        assert_eq!(r.effective_cost, r.edges + r.jumps);
        assert!(r.ratio_to_lower_bound >= 1.0 - 1e-9);
    }

    #[test]
    fn display_is_informative() {
        let g = generators::path(3);
        let s = pebble_nearest_neighbor(&g).unwrap();
        let text = SchemeReport::new(&g, &s).to_string();
        assert!(text.contains("m=3"));
        assert!(text.contains("π"));
    }
}

/// Converts a join algorithm's *trace* (its result pairs in visit order,
/// as `(left, right)` tuple ids) into the pebbling scheme it implies —
/// the §2 modelling step made executable: "any join algorithm has to
/// consider this pair of tuples at some point of time in its execution
/// and produce a result tuple… the join algorithm places one pebble on
/// each vertex".
///
/// Errors if the trace misses a join-graph edge or references a
/// non-edge.
pub fn implied_scheme(
    g: &BipartiteGraph,
    trace: &[(u32, u32)],
) -> Result<PebblingScheme, crate::PebbleError> {
    let mut order = Vec::with_capacity(trace.len());
    for &(l, r) in trace {
        match g.edge_index(l, r) {
            Some(e) => order.push(e),
            None => return Err(crate::PebbleError::NotAnEdge { left: l, right: r }),
        }
    }
    PebblingScheme::from_edge_sequence(g, &order)
}

#[cfg(test)]
mod implied_tests {
    use super::*;
    use jp_graph::generators;

    #[test]
    fn identity_trace_round_trips() {
        let g = generators::complete_bipartite(2, 3);
        let trace: Vec<(u32, u32)> = g.edges().to_vec();
        let s = implied_scheme(&g, &trace).unwrap();
        s.validate(&g).unwrap();
    }

    #[test]
    fn missing_pair_is_an_error() {
        let g = generators::path(3);
        let partial = &g.edges()[..2];
        assert!(implied_scheme(&g, partial).is_err());
    }

    #[test]
    fn non_edge_is_an_error() {
        let g = generators::matching(2);
        assert!(implied_scheme(&g, &[(0, 1)]).is_err());
    }
}

/// Comparison of every applicable pebbler on one graph: algorithm name
/// and its report, exact solvers included when the instance is small
/// enough.
pub fn compare_all(g: &BipartiteGraph) -> Vec<(&'static str, SchemeReport)> {
    use crate::approx::{
        pebble_dfs_partition, pebble_equijoin, pebble_euler_trails, pebble_nearest_neighbor,
        pebble_path_cover,
    };
    let mut out = Vec::new();
    if let Ok(s) = pebble_equijoin(g) {
        out.push(("equijoin (Thm 4.1)", SchemeReport::new(g, &s)));
    }
    for (name, res) in [
        ("dfs-partition (Thm 3.1)", pebble_dfs_partition(g)),
        ("euler-trails", pebble_euler_trails(g)),
        ("path-cover", pebble_path_cover(g)),
        (
            "matching-cover (P&Y-style)",
            crate::approx::pebble_matching_cover(g),
        ),
        ("nearest-neighbor", pebble_nearest_neighbor(g)),
    ] {
        if let Ok(s) = res {
            out.push((name, SchemeReport::new(g, &s)));
        }
    }
    if let Ok(s) = crate::exact::optimal_scheme(g) {
        out.push(("exact (Held–Karp)", SchemeReport::new(g, &s)));
    }
    // Run branch and bound even when Held–Karp succeeded: the two exact
    // solvers cross-check each other, and bb alone covers instances past
    // the Held–Karp memory wall.
    if let Ok(s) = crate::exact_bb::optimal_scheme_bb(g, 20_000_000) {
        out.push(("exact (branch & bound)", SchemeReport::new(g, &s)));
    }
    out
}

#[cfg(test)]
mod compare_tests {
    use super::*;
    use jp_graph::generators;

    #[test]
    fn compare_all_on_equijoin_graph_includes_linear_pebbler() {
        let g = generators::complete_bipartite(3, 4);
        let rows = compare_all(&g);
        assert!(rows.iter().any(|(n, _)| n.starts_with("equijoin")));
        assert!(rows.iter().any(|(n, _)| n.starts_with("exact")));
        // every report is for a valid scheme with π >= m
        for (name, r) in &rows {
            assert!(r.effective_cost >= g.edge_count(), "{name}");
        }
    }

    #[test]
    fn compare_all_on_spider_excludes_equijoin_pebbler() {
        let g = generators::spider(4);
        let rows = compare_all(&g);
        assert!(!rows.iter().any(|(n, _)| n.starts_with("equijoin")));
        let exact = rows.iter().find(|(n, _)| n.starts_with("exact")).unwrap();
        assert_eq!(exact.1.effective_cost, 9);
        // exact is the minimum of all rows
        assert!(rows
            .iter()
            .all(|(_, r)| r.effective_cost >= exact.1.effective_cost));
    }
}
