//! Page-level pebbling — the model the paper's pebble game descends from.
//!
//! §2, related work: "a similar pebbling game was considered in \[6\]
//! (Merrett, Kambayashi, Yasuura). There, the nodes of the graph were
//! *disk pages* of tuples, and the pebbling cost was used to capture the
//! I/O cost of scheduling page fetches for this specific layout of disk
//! pages. The main result of that paper was that the problem of finding
//! the optimal pebbling scheme is NP-Complete. It was shown in \[7\]
//! (Neyer, Widmayer) that finding the optimal pebbling scheme for
//! spatial joins is NP-Complete" — the two results Theorem 4.2 imports.
//!
//! This module reconstructs that page-level view on top of the
//! tuple-level machinery: a [`PageLayout`] groups tuples into fixed-size
//! pages; the *page graph* is the quotient of the join graph under the
//! layout; pebbling the page graph with two pebbles is exactly the
//! two-buffer page-fetch scheduling problem of \[6\] (each pebble move =
//! one page fetch into a two-page buffer pool; an edge deletion = the
//! chance to join all tuple pairs across the two resident pages).
//!
//! The interesting phenomenon (experiment E18): *layout quality decides
//! everything*. A value-clustered layout of an equijoin keeps the page
//! graph a union of complete bipartite graphs — perfect pebbling, one
//! fetch per page in the best case — while a scattered layout of the
//! same relations produces a dense general page graph whose optimal
//! schedule is NP-hard to find and strictly more expensive per page.

use crate::scheme::PebblingScheme;
use crate::PebbleError;
use jp_graph::{quotient, BipartiteGraph};

/// An assignment of tuples to fixed-capacity pages, per side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageLayout {
    /// Page id per left tuple.
    pub left_page: Vec<u32>,
    /// Page id per right tuple.
    pub right_page: Vec<u32>,
    /// Number of left pages.
    pub left_pages: u32,
    /// Number of right pages.
    pub right_pages: u32,
}

impl PageLayout {
    /// Sequential layout: tuples in storage order, `cap` per page — the
    /// value-clustered layout when the relation is sorted on the join
    /// key (or tiled by spatial locality).
    pub fn sequential(n_left: usize, n_right: usize, cap: usize) -> Self {
        assert!(cap > 0, "page capacity must be positive");
        let left_page: Vec<u32> = (0..n_left).map(|i| (i / cap) as u32).collect();
        let right_page: Vec<u32> = (0..n_right).map(|i| (i / cap) as u32).collect();
        PageLayout {
            left_pages: n_left.div_ceil(cap).max(1) as u32,
            right_pages: n_right.div_ceil(cap).max(1) as u32,
            left_page,
            right_page,
        }
    }

    /// Scattered layout: tuple `i` goes to page `hash(i) mod pages`,
    /// pages as in [`PageLayout::sequential`] — the unclustered heap-file
    /// regime.
    pub fn scattered(n_left: usize, n_right: usize, cap: usize, seed: u64) -> Self {
        assert!(cap > 0, "page capacity must be positive");
        let lp = n_left.div_ceil(cap).max(1) as u32;
        let rp = n_right.div_ceil(cap).max(1) as u32;
        let h = |i: usize, salt: u64| -> u32 {
            let x = (i as u64 ^ salt)
                .wrapping_mul(0x9e3779b97f4a7c15)
                .rotate_left(29)
                .wrapping_mul(0xd1b54a32d192ed03);
            (x >> 33) as u32
        };
        // Balanced scatter: sort tuples by hash, deal into pages round-
        // robin so capacities hold exactly.
        let mut lorder: Vec<usize> = (0..n_left).collect();
        lorder.sort_by_key(|&i| h(i, seed));
        let mut left_page = vec![0u32; n_left];
        for (rank, &i) in lorder.iter().enumerate() {
            left_page[i] = (rank / cap) as u32;
        }
        let mut rorder: Vec<usize> = (0..n_right).collect();
        rorder.sort_by_key(|&i| h(i, seed ^ 0xabcdef));
        let mut right_page = vec![0u32; n_right];
        for (rank, &i) in rorder.iter().enumerate() {
            right_page[i] = (rank / cap) as u32;
        }
        PageLayout {
            left_page,
            right_page,
            left_pages: lp,
            right_pages: rp,
        }
    }

    /// The page graph: the quotient of the join graph under this layout.
    /// Vertices are pages; pages are adjacent iff some tuple pair across
    /// them joins — the graph whose pebbling is page-fetch scheduling.
    pub fn page_graph(&self, g: &BipartiteGraph) -> BipartiteGraph {
        quotient(
            g,
            &self.left_page,
            self.left_pages,
            &self.right_page,
            self.right_pages,
        )
    }

    /// Validates the layout against a graph and a page capacity.
    pub fn validate(&self, g: &BipartiteGraph, cap: usize) -> Result<(), String> {
        if self.left_page.len() != g.left_count() as usize
            || self.right_page.len() != g.right_count() as usize
        {
            return Err("layout length mismatch".into());
        }
        let mut lcount = vec![0usize; self.left_pages as usize];
        for &p in &self.left_page {
            let c = lcount
                .get_mut(p as usize)
                .ok_or(format!("left page {p} out of range"))?;
            *c += 1;
            if *c > cap {
                return Err(format!("left page {p} over capacity {cap}"));
            }
        }
        let mut rcount = vec![0usize; self.right_pages as usize];
        for &p in &self.right_page {
            let c = rcount
                .get_mut(p as usize)
                .ok_or(format!("right page {p} out of range"))?;
            *c += 1;
            if *c > cap {
                return Err(format!("right page {p} over capacity {cap}"));
            }
        }
        Ok(())
    }
}

/// The page-fetch count of a pebbling scheme of the page graph under the
/// two-page buffer model of \[6\]: the initial configuration fetches two
/// pages and every subsequent configuration fetches one — i.e. exactly
/// `π̂(P)`. Provided as a named alias so call sites read as I/O.
pub fn page_fetches(scheme: &PebblingScheme) -> usize {
    scheme.cost()
}

/// Schedules page fetches for a join under a layout: builds the page
/// graph and pebbles it (equijoin-perfect pebbler when the page graph
/// permits, the Theorem 3.1 construction otherwise). Returns the page
/// graph and the schedule.
pub fn schedule_page_fetches(
    g: &BipartiteGraph,
    layout: &PageLayout,
) -> Result<(BipartiteGraph, PebblingScheme), PebbleError> {
    let pg = layout.page_graph(g);
    let scheme = match crate::approx::pebble_equijoin(&pg) {
        Ok(s) => s,
        Err(PebbleError::NotEquijoinGraph) => crate::approx::pebble_dfs_partition(&pg)?,
        Err(e) => return Err(e),
    };
    Ok((pg, scheme))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use jp_graph::{generators, properties};
    use jp_relalg::{equijoin_graph, workload};

    /// A sorted equijoin: clustering by key keeps the page graph an
    /// equijoin graph.
    fn sorted_equijoin(n: usize, keys: usize, seed: u64) -> BipartiteGraph {
        let (r, s) = workload::zipf_equijoin(n, n, keys, 0.4, seed);
        // sort both relations by value to emulate clustered storage
        let mut rv: Vec<i64> = r.values().iter().map(|v| v.as_int().unwrap()).collect();
        let mut sv: Vec<i64> = s.values().iter().map(|v| v.as_int().unwrap()).collect();
        rv.sort_unstable();
        sv.sort_unstable();
        let r = jp_relalg::Relation::from_ints("R", rv);
        let s = jp_relalg::Relation::from_ints("S", sv);
        equijoin_graph(&r, &s)
    }

    #[test]
    fn sequential_layout_shape() {
        let l = PageLayout::sequential(10, 7, 4);
        assert_eq!(l.left_pages, 3);
        assert_eq!(l.right_pages, 2);
        assert_eq!(l.left_page[9], 2);
        assert_eq!(l.right_page[3], 0);
    }

    #[test]
    fn scattered_layout_respects_capacity() {
        let g = generators::complete_bipartite(9, 9);
        for seed in 0..5 {
            let l = PageLayout::scattered(9, 9, 4, seed);
            l.validate(&g, 4).unwrap();
        }
    }

    #[test]
    fn page_graph_is_quotient() {
        // matching of 4 edges, 2 tuples per page, aligned: page graph is
        // a matching of 2 edges
        let g = generators::matching(4);
        let l = PageLayout::sequential(4, 4, 2);
        let pg = l.page_graph(&g);
        assert_eq!(pg.edge_count(), 2);
        assert!(properties::is_matching(&pg));
    }

    #[test]
    fn clustered_equijoin_pages_stay_equijoin() {
        // sorted relations + sequential pages: each page spans few keys;
        // the page graph may stop being a *union of complete bipartite*
        // graphs only through boundary pages — with capacity dividing the
        // group sizes evenly here, it stays interval-banded; we assert the
        // weaker, always-true property: scheduling cost within the Lemma
        // 2.1 window and far below the scattered layout's (see below).
        let g = sorted_equijoin(64, 8, 11);
        let layout = PageLayout::sequential(g.left_count() as usize, g.right_count() as usize, 8);
        let (pg, scheme) = schedule_page_fetches(&g, &layout).unwrap();
        scheme.validate(&pg).unwrap();
        assert!(page_fetches(&scheme) > pg.edge_count());
        assert!(page_fetches(&scheme) <= 2 * pg.edge_count());
    }

    #[test]
    fn scattered_layout_densifies_the_page_graph() {
        let g = sorted_equijoin(64, 8, 12);
        let nl = g.left_count() as usize;
        let nr = g.right_count() as usize;
        let seq = PageLayout::sequential(nl, nr, 8).page_graph(&g);
        let scat = PageLayout::scattered(nl, nr, 8, 3).page_graph(&g);
        assert!(
            scat.edge_count() > seq.edge_count(),
            "scatter {} should exceed clustered {}",
            scat.edge_count(),
            seq.edge_count()
        );
    }

    #[test]
    fn page_schedule_cost_tracks_optimum_on_small_page_graphs() {
        let g = sorted_equijoin(36, 6, 13);
        let layout = PageLayout::sequential(g.left_count() as usize, g.right_count() as usize, 9);
        let (pg, scheme) = schedule_page_fetches(&g, &layout).unwrap();
        if pg.edge_count() <= exact::MAX_EXACT_EDGES {
            let opt = exact::optimal_total_cost(&pg).unwrap();
            assert!(page_fetches(&scheme) >= opt);
            assert!(
                page_fetches(&scheme) <= 2 * opt,
                "schedule within 2x of optimal fetches"
            );
        }
    }

    #[test]
    fn single_page_relations_need_two_fetches() {
        let g = generators::complete_bipartite(3, 3);
        let layout = PageLayout::sequential(3, 3, 10);
        let (pg, scheme) = schedule_page_fetches(&g, &layout).unwrap();
        assert_eq!(pg.edge_count(), 1);
        assert_eq!(page_fetches(&scheme), 2);
    }
}
