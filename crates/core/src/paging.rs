//! Page-level pebbling — the model the paper's pebble game descends from.
//!
//! §2, related work: "a similar pebbling game was considered in \[6\]
//! (Merrett, Kambayashi, Yasuura). There, the nodes of the graph were
//! *disk pages* of tuples, and the pebbling cost was used to capture the
//! I/O cost of scheduling page fetches for this specific layout of disk
//! pages. The main result of that paper was that the problem of finding
//! the optimal pebbling scheme is NP-Complete. It was shown in \[7\]
//! (Neyer, Widmayer) that finding the optimal pebbling scheme for
//! spatial joins is NP-Complete" — the two results Theorem 4.2 imports.
//!
//! This module reconstructs that page-level view on top of the
//! tuple-level machinery: a [`PageLayout`] groups tuples into fixed-size
//! pages; the *page graph* is the quotient of the join graph under the
//! layout; pebbling the page graph with two pebbles is exactly the
//! two-buffer page-fetch scheduling problem of \[6\] (each pebble move =
//! one page fetch into a two-page buffer pool; an edge deletion = the
//! chance to join all tuple pairs across the two resident pages).
//!
//! The interesting phenomenon (experiment E18): *layout quality decides
//! everything*. A value-clustered layout of an equijoin keeps the page
//! graph a union of complete bipartite graphs — perfect pebbling, one
//! fetch per page in the best case — while a scattered layout of the
//! same relations produces a dense general page graph whose optimal
//! schedule is NP-hard to find and strictly more expensive per page.

use crate::scheme::PebblingScheme;
use crate::PebbleError;
use jp_graph::{quotient, BipartiteGraph};

/// An assignment of tuples to fixed-capacity pages, per side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageLayout {
    /// Page id per left tuple.
    pub left_page: Vec<u32>,
    /// Page id per right tuple.
    pub right_page: Vec<u32>,
    /// Number of left pages.
    pub left_pages: u32,
    /// Number of right pages.
    pub right_pages: u32,
}

/// Checked page count for `n` tuples at `cap` per page. Page ids are
/// `u32`; a relation needing more pages than that must fail loudly
/// ([`PebbleError::TooManyPages`]) instead of silently wrapping — the
/// same discipline `jp_relalg::parallel` applies to tuple ids. Checked
/// *before* any per-tuple allocation, so an absurd `n` errors
/// immediately rather than attempting the allocation first.
fn page_count(n: usize, cap: usize) -> Result<u32, PebbleError> {
    let pages = n.div_ceil(cap).max(1);
    u32::try_from(pages).map_err(|_| PebbleError::TooManyPages { pages })
}

impl PageLayout {
    /// Sequential layout: tuples in storage order, `cap` per page — the
    /// value-clustered layout when the relation is sorted on the join
    /// key (or tiled by spatial locality).
    ///
    /// # Errors
    /// [`PebbleError::TooManyPages`] when either side needs more than
    /// `u32::MAX` pages.
    ///
    /// # Panics
    /// Panics when `cap == 0`.
    pub fn sequential(n_left: usize, n_right: usize, cap: usize) -> Result<Self, PebbleError> {
        assert!(cap > 0, "page capacity must be positive");
        let left_pages = page_count(n_left, cap)?;
        let right_pages = page_count(n_right, cap)?;
        // i / cap < left_pages <= u32::MAX, so the per-tuple ids fit.
        let left_page: Vec<u32> = (0..n_left).map(|i| (i / cap) as u32).collect();
        let right_page: Vec<u32> = (0..n_right).map(|i| (i / cap) as u32).collect();
        Ok(PageLayout {
            left_pages,
            right_pages,
            left_page,
            right_page,
        })
    }

    /// Scattered layout: tuple `i` goes to page `hash(i) mod pages`,
    /// pages as in [`PageLayout::sequential`] — the unclustered heap-file
    /// regime.
    ///
    /// # Errors
    /// [`PebbleError::TooManyPages`] when either side needs more than
    /// `u32::MAX` pages.
    ///
    /// # Panics
    /// Panics when `cap == 0`.
    pub fn scattered(
        n_left: usize,
        n_right: usize,
        cap: usize,
        seed: u64,
    ) -> Result<Self, PebbleError> {
        assert!(cap > 0, "page capacity must be positive");
        let lp = page_count(n_left, cap)?;
        let rp = page_count(n_right, cap)?;
        let h = |i: usize, salt: u64| -> u32 {
            let x = (i as u64 ^ salt)
                .wrapping_mul(0x9e3779b97f4a7c15)
                .rotate_left(29)
                .wrapping_mul(0xd1b54a32d192ed03);
            (x >> 33) as u32
        };
        // Balanced scatter: sort tuples by hash, deal into pages round-
        // robin so capacities hold exactly.
        let mut lorder: Vec<usize> = (0..n_left).collect();
        lorder.sort_by_key(|&i| h(i, seed));
        let mut left_page = vec![0u32; n_left];
        for (rank, &i) in lorder.iter().enumerate() {
            // rank / cap < lp <= u32::MAX (checked above), so this fits
            left_page[i] = (rank / cap) as u32;
        }
        let mut rorder: Vec<usize> = (0..n_right).collect();
        rorder.sort_by_key(|&i| h(i, seed ^ 0xabcdef));
        let mut right_page = vec![0u32; n_right];
        for (rank, &i) in rorder.iter().enumerate() {
            right_page[i] = (rank / cap) as u32;
        }
        Ok(PageLayout {
            left_page,
            right_page,
            left_pages: lp,
            right_pages: rp,
        })
    }

    /// The page graph: the quotient of the join graph under this layout.
    /// Vertices are pages; pages are adjacent iff some tuple pair across
    /// them joins — the graph whose pebbling is page-fetch scheduling.
    pub fn page_graph(&self, g: &BipartiteGraph) -> BipartiteGraph {
        quotient(
            g,
            &self.left_page,
            self.left_pages,
            &self.right_page,
            self.right_pages,
        )
    }

    /// Validates the layout against a graph and a page capacity.
    pub fn validate(&self, g: &BipartiteGraph, cap: usize) -> Result<(), String> {
        if self.left_page.len() != g.left_count() as usize
            || self.right_page.len() != g.right_count() as usize
        {
            return Err("layout length mismatch".into());
        }
        let mut lcount = vec![0usize; self.left_pages as usize];
        for &p in &self.left_page {
            let c = lcount
                .get_mut(p as usize)
                .ok_or(format!("left page {p} out of range"))?;
            *c += 1;
            if *c > cap {
                return Err(format!("left page {p} over capacity {cap}"));
            }
        }
        let mut rcount = vec![0usize; self.right_pages as usize];
        for &p in &self.right_page {
            let c = rcount
                .get_mut(p as usize)
                .ok_or(format!("right page {p} out of range"))?;
            *c += 1;
            if *c > cap {
                return Err(format!("right page {p} over capacity {cap}"));
            }
        }
        Ok(())
    }
}

/// The page-fetch count of a pebbling scheme of the page graph under the
/// two-page buffer model of \[6\]: the initial configuration fetches two
/// pages and every subsequent configuration fetches one — i.e. exactly
/// `π̂(P)`. Provided as a named alias so call sites read as I/O.
pub fn page_fetches(scheme: &PebblingScheme) -> usize {
    scheme.cost()
}

/// Schedules page fetches for a join under a layout: builds the page
/// graph and pebbles it (equijoin-perfect pebbler when the page graph
/// permits, the Theorem 3.1 construction otherwise). Returns the page
/// graph and the schedule.
pub fn schedule_page_fetches(
    g: &BipartiteGraph,
    layout: &PageLayout,
) -> Result<(BipartiteGraph, PebblingScheme), PebbleError> {
    let pg = layout.page_graph(g);
    let scheme = match crate::approx::pebble_equijoin(&pg) {
        Ok(s) => s,
        Err(PebbleError::NotEquijoinGraph) => crate::approx::pebble_dfs_partition(&pg)?,
        Err(e) => return Err(e),
    };
    Ok((pg, scheme))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use jp_graph::{generators, properties};
    use jp_relalg::{equijoin_graph, workload};

    /// A sorted equijoin: clustering by key keeps the page graph an
    /// equijoin graph.
    fn sorted_equijoin(n: usize, keys: usize, seed: u64) -> BipartiteGraph {
        let (r, s) = workload::zipf_equijoin(n, n, keys, 0.4, seed);
        // sort both relations by value to emulate clustered storage
        let mut rv: Vec<i64> = r.values().iter().map(|v| v.as_int().unwrap()).collect();
        let mut sv: Vec<i64> = s.values().iter().map(|v| v.as_int().unwrap()).collect();
        rv.sort_unstable();
        sv.sort_unstable();
        let r = jp_relalg::Relation::from_ints("R", rv);
        let s = jp_relalg::Relation::from_ints("S", sv);
        equijoin_graph(&r, &s).unwrap()
    }

    #[test]
    fn sequential_layout_shape() {
        let l = PageLayout::sequential(10, 7, 4).unwrap();
        assert_eq!(l.left_pages, 3);
        assert_eq!(l.right_pages, 2);
        assert_eq!(l.left_page[9], 2);
        assert_eq!(l.right_page[3], 0);
    }

    #[test]
    fn page_count_overflow_is_a_typed_error() {
        // ~2^63 pages cannot be addressed by u32 page ids; the checked
        // count fails before any per-tuple vector is allocated (this
        // test would OOM otherwise)
        let err = PageLayout::sequential(usize::MAX, 4, 2).unwrap_err();
        assert!(matches!(err, PebbleError::TooManyPages { .. }));
        let err = PageLayout::scattered(4, usize::MAX, 2, 1).unwrap_err();
        assert!(matches!(err, PebbleError::TooManyPages { .. }));
        // the error carries the page count it refused to truncate
        match PageLayout::sequential(1 << 40, 0, 2).unwrap_err() {
            PebbleError::TooManyPages { pages } => {
                assert_eq!(pages, 1 << 39);
            }
            other => panic!("expected TooManyPages, got {other:?}"),
        }
    }

    #[test]
    fn scattered_layout_respects_capacity() {
        let g = generators::complete_bipartite(9, 9);
        for seed in 0..5 {
            let l = PageLayout::scattered(9, 9, 4, seed).unwrap();
            l.validate(&g, 4).unwrap();
        }
    }

    #[test]
    fn page_graph_is_quotient() {
        // matching of 4 edges, 2 tuples per page, aligned: page graph is
        // a matching of 2 edges
        let g = generators::matching(4);
        let l = PageLayout::sequential(4, 4, 2).unwrap();
        let pg = l.page_graph(&g);
        assert_eq!(pg.edge_count(), 2);
        assert!(properties::is_matching(&pg));
    }

    #[test]
    fn clustered_equijoin_pages_stay_equijoin() {
        // sorted relations + sequential pages: each page spans few keys;
        // the page graph may stop being a *union of complete bipartite*
        // graphs only through boundary pages — with capacity dividing the
        // group sizes evenly here, it stays interval-banded; we assert the
        // weaker, always-true property: scheduling cost within the Lemma
        // 2.1 window and far below the scattered layout's (see below).
        let g = sorted_equijoin(64, 8, 11);
        let layout =
            PageLayout::sequential(g.left_count() as usize, g.right_count() as usize, 8).unwrap();
        let (pg, scheme) = schedule_page_fetches(&g, &layout).unwrap();
        scheme.validate(&pg).unwrap();
        assert!(page_fetches(&scheme) > pg.edge_count());
        assert!(page_fetches(&scheme) <= 2 * pg.edge_count());
    }

    #[test]
    fn scattered_layout_densifies_the_page_graph() {
        let g = sorted_equijoin(64, 8, 12);
        let nl = g.left_count() as usize;
        let nr = g.right_count() as usize;
        let seq = PageLayout::sequential(nl, nr, 8).unwrap().page_graph(&g);
        let scat = PageLayout::scattered(nl, nr, 8, 3).unwrap().page_graph(&g);
        assert!(
            scat.edge_count() > seq.edge_count(),
            "scatter {} should exceed clustered {}",
            scat.edge_count(),
            seq.edge_count()
        );
    }

    #[test]
    fn page_schedule_cost_tracks_optimum_on_small_page_graphs() {
        let g = sorted_equijoin(36, 6, 13);
        let layout =
            PageLayout::sequential(g.left_count() as usize, g.right_count() as usize, 9).unwrap();
        let (pg, scheme) = schedule_page_fetches(&g, &layout).unwrap();
        if pg.edge_count() <= exact::MAX_EXACT_EDGES {
            let opt = exact::optimal_total_cost(&pg).unwrap();
            assert!(page_fetches(&scheme) >= opt);
            assert!(
                page_fetches(&scheme) <= 2 * opt,
                "schedule within 2x of optimal fetches"
            );
        }
    }

    #[test]
    fn single_page_relations_need_two_fetches() {
        let g = generators::complete_bipartite(3, 3);
        let layout = PageLayout::sequential(3, 3, 10).unwrap();
        let (pg, scheme) = schedule_page_fetches(&g, &layout).unwrap();
        assert_eq!(pg.edge_count(), 1);
        assert_eq!(page_fetches(&scheme), 2);
    }
}
