//! Portfolio racing: every solver in the ladder runs as a task on the
//! `jp-par` work-stealing runtime, against one shared incumbent.
//!
//! The ladder of §3–§4 spans five orders of magnitude in cost: the exact
//! Held–Karp DP proves optimality but burns `O(2^m)` work, while
//! `dfs_partition` gives the constructive 1.25 guarantee in linear time.
//! Instead of picking one solver per instance, [`portfolio_scheme`] races
//! them all and keeps the best scheme any of them produced:
//!
//! * the **incumbent** — the best effective cost offered so far — lives
//!   in an `AtomicUsize` every strategy can read;
//! * the **floor** is the certified lower bound
//!   [`crate::bounds::best_lower_bound`] (Lemma 2.1 / Theorem 3.3):
//!   no scheme whatsoever can cost less, so the moment the incumbent
//!   reaches it, every still-running strategy is provably unable to
//!   improve the answer and *abandons* its remaining work;
//! * the expensive strategies are **pollable**: the exact DP checks the
//!   incumbent between subset rows
//!   ([`crate::exact`]'s racing entry point), and the local-search
//!   ladder checks between improvement passes, so a cheap heuristic
//!   that certifies optimality cuts the exponential work short within
//!   milliseconds.
//!
//! Abandonment is *sound*: a strategy gives up only when the incumbent
//! already equals the floor, a cost its own result could at best match.
//! Hence the returned cost is identical for every thread count — with
//! one worker nothing is ever abandoned mid-race on the result path,
//! with many workers the same minimum is found sooner. The winning
//! strategy (lowest cost, ties to the earlier ladder position) is
//! recorded through `jp-obs` counters.

use crate::approx::nearest_neighbor::nearest_neighbor_tour;
use crate::approx::{
    improve_or_opt, improve_two_opt, pebble_dfs_partition, pebble_equijoin, pebble_euler_trails,
    pebble_matching_cover, pebble_nearest_neighbor, pebble_path_cover, per_component_scheme,
};
use crate::exact::{solve_components_racing, MAX_EXACT_EDGES};
use crate::memo::Memo;
use crate::scheme::PebblingScheme;
use crate::tsp::Tsp12;
use crate::{bounds, PebbleError};
use jp_graph::BipartiteGraph;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// The racing strategies, in ladder order. The position doubles as the
/// tie-break: among equal-cost finishers the earliest position wins, so
/// the recorded winner is stable. Position 0 is the exact solver — the
/// only one that is expensive enough to need mid-flight abandonment, and
/// therefore the one that profits most from racing.
pub const STRATEGIES: [&str; 8] = [
    "exact",
    "ladder",
    "matching_cover",
    "dfs_partition",
    "euler_trails",
    "path_cover",
    "nearest_neighbor",
    "equijoin",
];

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct Best {
    cost: usize,
    strategy: usize,
    scheme: PebblingScheme,
}

/// Shared race state: the atomic incumbent every strategy polls, the
/// certified floor below which no scheme can go, and the best scheme so
/// far.
struct Race {
    incumbent: AtomicUsize,
    floor: usize,
    best: Mutex<Option<Best>>,
}

impl Race {
    /// `true` while some scheme could still cost less than the incumbent.
    /// Once `false` it stays `false` (the incumbent only decreases and
    /// the floor is a true lower bound), which is what makes abandoning
    /// on it sound.
    fn beatable(&self) -> bool {
        // race:order(a stale read only delays abandonment by one poll; the incumbent is monotonically decreasing)
        self.incumbent.load(Ordering::Relaxed) > self.floor
    }

    fn offer(&self, g: &BipartiteGraph, strategy: usize, scheme: PebblingScheme) {
        let cost = scheme.effective_cost(g);
        // race:order(fetch_min is monotone and the winning scheme is re-checked under the best lock below)
        self.incumbent.fetch_min(cost, Ordering::Relaxed);
        // Live incumbent: the race's current best effective cost.
        jp_pulse::gauge_set(
            "portfolio.incumbent_cost",
            // race:order(live gauge snapshot of a monotone value)
            self.incumbent.load(Ordering::Relaxed) as u64,
        );
        let mut best = lock(&self.best);
        let replace = match &*best {
            Some(b) => (cost, strategy) < (b.cost, b.strategy),
            None => true,
        };
        if replace {
            *best = Some(Best {
                cost,
                strategy,
                scheme,
            });
        }
    }
}

/// Strategy 0: the exact solver, polled against the incumbent between DP
/// subset rows. `None` when abandoned or when a component exceeds the
/// Held–Karp memory wall — in a race that is a skip, not an error. With
/// a memo, recognized/cached components are served without the DP (so
/// the exact strategy can win even past the wall) and fresh DP results
/// are recorded.
fn run_exact(g: &BipartiteGraph, race: &Race, memo: Option<&Memo>) -> Option<PebblingScheme> {
    if !race.beatable() {
        return None;
    }
    match solve_components_racing(g, MAX_EXACT_EDGES, &|| !race.beatable(), memo) {
        Ok(Some(comps)) => {
            let order: Vec<usize> = comps.into_iter().flat_map(|(o, _)| o).collect();
            PebblingScheme::from_edge_sequence(g, &order).ok()
        }
        Ok(None) | Err(_) => None,
    }
}

/// Strategy 1: nearest-neighbour seed plus alternating 2-opt/Or-opt
/// passes to a local optimum, polling the incumbent between passes.
/// Abandoning mid-ladder keeps the tour built so far — it stops
/// improving rather than discarding work.
fn run_ladder(g: &BipartiteGraph, race: &Race) -> Option<PebblingScheme> {
    if !race.beatable() {
        return None;
    }
    per_component_scheme(g, "portfolio.ladder", |lg| {
        let tsp = Tsp12::new(lg.clone());
        let mut tour = nearest_neighbor_tour(lg);
        while race.beatable() {
            let improved = improve_two_opt(&tsp, &mut tour, 1) + improve_or_opt(&tsp, &mut tour, 1);
            if improved == 0 {
                break;
            }
        }
        tour
    })
    .ok()
}

/// Monolithic strategies (2..): too fast to poll internally, so the only
/// abandonment point is before starting. Solver errors (e.g. `equijoin`
/// on a non-equijoin graph) are skips, not race failures.
fn run_if_beatable(
    race: &Race,
    solver: impl FnOnce() -> Result<PebblingScheme, PebbleError>,
) -> Option<PebblingScheme> {
    if !race.beatable() {
        return None;
    }
    solver().ok()
}

/// Races the full solver ladder on `threads` workers and returns the
/// best scheme any strategy produced.
///
/// The returned *cost* is deterministic across thread counts (see the
/// module docs for the soundness argument); the winning strategy and
/// the tour itself may differ. With `threads == 1` the strategies run
/// in ladder order on the calling thread.
///
/// ```
/// use jp_graph::generators;
/// use jp_pebble::portfolio::portfolio_scheme;
///
/// let g = generators::spider(5);
/// let s = portfolio_scheme(&g, 4).unwrap();
/// assert_eq!(s.effective_cost(&g), 12); // m + ceil((n-2)/2)
/// ```
// audit:allow(obs-coverage) thin wrapper; portfolio_scheme_memo opens the span
pub fn portfolio_scheme(g: &BipartiteGraph, threads: usize) -> Result<PebblingScheme, PebbleError> {
    portfolio_scheme_memo(g, threads, None)
}

/// [`portfolio_scheme`] with an optional memo threaded into the exact
/// strategy: recognized families and proved-optimal cache entries are
/// offered to the race without DP work, and fresh DP wins are recorded
/// for the rest of the workload. `None` is exactly [`portfolio_scheme`].
pub fn portfolio_scheme_memo(
    g: &BipartiteGraph,
    threads: usize,
    memo: Option<&Memo>,
) -> Result<PebblingScheme, PebbleError> {
    let _span = jp_obs::span("portfolio", "race");
    let _mem = jp_pulse::mem_scope(jp_pulse::MemScope::Solver);
    let race = Race {
        incumbent: AtomicUsize::new(usize::MAX),
        floor: bounds::best_lower_bound(g),
        best: Mutex::new(None),
    };
    if jp_obs::enabled() {
        jp_obs::counter("portfolio", "workers", threads.max(1) as u64);
        jp_obs::counter("portfolio", "floor", race.floor as u64);
    }
    let race_ref = &race;
    let completed = jp_par::run_tasks(threads, (0..STRATEGIES.len()).collect(), |_, idx| {
        let scheme = match idx {
            0 => run_exact(g, race_ref, memo),
            1 => run_ladder(g, race_ref),
            2 => run_if_beatable(race_ref, || pebble_matching_cover(g)),
            3 => run_if_beatable(race_ref, || pebble_dfs_partition(g)),
            4 => run_if_beatable(race_ref, || pebble_euler_trails(g)),
            5 => run_if_beatable(race_ref, || pebble_path_cover(g)),
            6 => run_if_beatable(race_ref, || pebble_nearest_neighbor(g)),
            _ => run_if_beatable(race_ref, || pebble_equijoin(g)),
        };
        match scheme {
            Some(s) => {
                race_ref.offer(g, idx, s);
                true
            }
            None => false,
        }
    });
    let finished = completed.iter().filter(|&&done| done).count();
    if jp_obs::enabled() {
        jp_obs::counter("portfolio", "completed", finished as u64);
        jp_obs::counter(
            "portfolio",
            "abandoned",
            (STRATEGIES.len() - finished) as u64,
        );
    }
    let winner = lock(&race.best).take();
    match winner {
        Some(b) => {
            if jp_obs::enabled() {
                jp_obs::counter("portfolio", "winner_cost", b.cost as u64);
                jp_obs::counter(
                    "portfolio",
                    &format!("winner.{}", STRATEGIES[b.strategy]),
                    1,
                );
            }
            Ok(b.scheme)
        }
        // Unreachable in practice: dfs_partition succeeds on every
        // bipartite graph and is only abandoned after some other offer
        // already hit the floor. Kept as a fallback, not an assert.
        None => pebble_dfs_partition(g),
    }
}

/// The effective cost of the portfolio winner.
// audit:allow(obs-coverage) thin wrapper — portfolio_scheme opens the portfolio.race span
pub fn portfolio_effective_cost(g: &BipartiteGraph, threads: usize) -> Result<usize, PebbleError> {
    Ok(portfolio_scheme(g, threads)?.effective_cost(g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use jp_graph::generators;

    #[test]
    fn portfolio_is_exact_on_small_instances() {
        // the exact strategy completes (or something matched the floor),
        // so on DP-sized instances the portfolio result is optimal
        for g in [
            generators::spider(5),
            generators::complete_bipartite(3, 4),
            generators::path(9),
            generators::random_connected_bipartite(4, 4, 10, 2),
        ] {
            let opt = exact::optimal_effective_cost(&g).unwrap();
            for threads in [1, 4] {
                assert_eq!(
                    portfolio_effective_cost(&g, threads).unwrap(),
                    opt,
                    "{g} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn portfolio_handles_instances_beyond_the_exact_solver() {
        // spider(12) has a 24-edge component: exact is skipped, the
        // heuristics still race, and dfs_partition's pendant-tight
        // result hits the floor
        let g = generators::spider(12);
        let cost = portfolio_effective_cost(&g, 4).unwrap();
        assert_eq!(cost as u64, crate::families::spider_optimal_cost(12));
    }

    #[test]
    fn portfolio_scheme_is_valid() {
        let g = generators::random_connected_bipartite(5, 5, 13, 7);
        let s = portfolio_scheme(&g, 2).unwrap();
        s.validate(&g).unwrap();
    }

    #[test]
    fn empty_graph_costs_nothing() {
        let g = BipartiteGraph::new(2, 2, Vec::new());
        assert_eq!(portfolio_effective_cost(&g, 4).unwrap(), 0);
    }

    #[test]
    fn cost_is_thread_count_invariant() {
        for seed in 0..6 {
            let g = generators::random_connected_bipartite(4, 5, 12, seed);
            let base = portfolio_effective_cost(&g, 1).unwrap();
            for threads in [2, 8] {
                assert_eq!(
                    portfolio_effective_cost(&g, threads).unwrap(),
                    base,
                    "seed {seed} at {threads} threads"
                );
            }
        }
    }
}
