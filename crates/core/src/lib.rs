#![forbid(unsafe_code)]
//! `jp-pebble` — the core of the reproduction of *On the Complexity of
//! Join Predicates* (Cai, Chakaravarthy, Kaushik, Naughton — PODS 2001).
//!
//! The paper models any join algorithm's tuple-level work as a two-pebble
//! game on the join graph and classifies join predicates two ways:
//!
//! * **combinatorially** — by the optimal pebbling cost `π(G)` of the join
//!   graphs the predicate can produce: `m` for equijoins (perfect,
//!   Theorem 3.2) up to `1.25m − 1` for set-containment and
//!   spatial-overlap joins (Theorems 3.1/3.3, Lemma 3.4);
//! * **computationally** — by the complexity of *finding* an optimal
//!   pebbling: linear time for equijoins (Theorem 4.1), NP-complete
//!   (Theorem 4.2) and MAX-SNP-complete (Theorem 4.4) in general.
//!
//! Module map:
//!
//! * [`scheme`] — configurations, schemes, costs `π̂`/`π`, validation;
//! * [`bounds`] — the §2.1/§3 combinatorial bounds;
//! * [`tsp`] — the TSP(1,2) view of pebbling over line graphs (§2.2);
//! * [`exact`] — optimal pebbling via Held–Karp over `L(G)` and the
//!   `PEBBLE(D)` decision procedure; [`exact_bb`] — budgeted branch-and-
//!   bound exactness beyond Held–Karp's memory wall;
//! * [`approx`] — the constructive 1.25-approximation of Theorem 3.1, the
//!   linear-time equijoin pebbler of Theorem 4.1, and the heuristic
//!   ladder (nearest neighbour, greedy path cover, Euler trails, 2-opt);
//! * [`portfolio`] — the whole ladder raced in parallel on the `jp-par`
//!   work-stealing runtime against a shared atomic incumbent, with
//!   lower-bound-certified abandonment;
//! * [`memo`] — workload-level memoization: closed-form recognizers plus
//!   a sharded cache keyed by canonical component form, so isomorphic
//!   components are solved once per workload (or once per lifetime, with
//!   JSONL persistence);
//! * [`families`] — closed-form optima for the structured families,
//!   including the Figure 1 worst-case spiders `G_n`;
//! * [`reductions`] — the L-reductions of §4 (diamond gadget,
//!   TSP-4(1,2) → TSP-3(1,2), TSP-3(1,2) → PEBBLE);
//! * [`analysis`] — per-scheme statistics and implied-scheme conversion
//!   used by the experiment harness;
//! * [`fragmentation`] — the §5 open problem (optimal tuple-to-fragment
//!   mappings), implemented as exact + heuristic solvers;
//! * [`paging`] — the page-fetch scheduling model of the paper's §2
//!   related work (Merrett et al. / Neyer–Widmayer), reconstructed as
//!   pebbling the quotient page graph;
//! * [`buffers`] — the `B`-buffer generalization: the 1.25 worst case is
//!   specific to two pebbles and collapses at `B = 3`.

pub mod analysis;
pub mod approx;
pub mod bounds;
pub mod buffers;
pub mod exact;
pub mod exact_bb;
pub mod families;
pub mod fragmentation;
pub mod memo;
pub mod paging;
pub mod portfolio;
pub mod reductions;
pub mod scheme;
pub mod tsp;

pub use scheme::{Config, PebblingScheme};

/// Errors produced by scheme construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PebbleError {
    /// Consecutive configurations differ in more (or fewer) than one
    /// pebble — the canonical-form invariant is broken at index `at`.
    NotCanonical {
        /// Index of the offending transition.
        at: usize,
    },
    /// An edge id exceeds the graph's edge count.
    EdgeOutOfRange {
        /// The offending edge id.
        edge: usize,
    },
    /// A configuration pebbles a vertex that does not exist in the
    /// graph — the scheme was built for a different (larger) graph.
    VertexOutOfRange {
        /// The offending pebble position.
        vertex: jp_graph::Vertex,
        /// How many vertices that side of the graph actually has.
        side_count: u32,
    },
    /// A tuple pair referenced by a trace is not an edge of the join
    /// graph (the pair does not join).
    NotAnEdge {
        /// Left tuple id.
        left: u32,
        /// Right tuple id.
        right: u32,
    },
    /// The scheme finished without deleting this edge.
    EdgeNotDeleted {
        /// The first undeleted edge.
        edge: usize,
    },
    /// The graph is not an equijoin join graph (some component is not
    /// complete bipartite) — returned by the Theorem 4.1 pebbler.
    NotEquijoinGraph,
    /// A buffer pool smaller than two slots cannot play the game (the
    /// paper's game *is* the two-slot case).
    BufferTooSmall {
        /// The requested capacity.
        buffer: usize,
    },
    /// A branch-and-bound search exhausted its node budget before
    /// proving optimality.
    BudgetExhausted {
        /// The exhausted node budget.
        budget: u64,
        /// Search nodes actually expanded before giving up.
        nodes: u64,
    },
    /// The instance is too large for the exact solver.
    TooLarge {
        /// Edges in the largest connected component.
        component_edges: usize,
        /// The solver's limit.
        limit: usize,
    },
    /// A page layout would need more pages than `u32` page ids can
    /// address — rejected up front instead of silently truncating.
    TooManyPages {
        /// Pages the layout would need on the overflowing side.
        pages: usize,
    },
}

impl std::fmt::Display for PebbleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PebbleError::NotCanonical { at } => {
                write!(
                    f,
                    "configurations {at} and {} differ in more than one pebble",
                    at + 1
                )
            }
            PebbleError::EdgeOutOfRange { edge } => write!(f, "edge id {edge} out of range"),
            PebbleError::VertexOutOfRange { vertex, side_count } => write!(
                f,
                "configuration pebbles {vertex}, but that side of the graph has only \
                 {side_count} vertices"
            ),
            PebbleError::NotAnEdge { left, right } => {
                write!(f, "tuple pair ({left}, {right}) is not a join-graph edge")
            }
            PebbleError::EdgeNotDeleted { edge } => {
                write!(f, "scheme never deletes edge {edge}")
            }
            PebbleError::NotEquijoinGraph => {
                write!(f, "graph has a component that is not complete bipartite")
            }
            PebbleError::BufferTooSmall { buffer } => {
                write!(
                    f,
                    "buffer capacity {buffer} is below the two-pebble minimum"
                )
            }
            PebbleError::BudgetExhausted { budget, nodes } => write!(
                f,
                "branch-and-bound node budget of {budget} exhausted after expanding {nodes} \
                 nodes without proving optimality; re-run with a larger --budget"
            ),
            PebbleError::TooLarge {
                component_edges,
                limit,
            } => write!(
                f,
                "component with {component_edges} edges exceeds exact-solver limit {limit}"
            ),
            PebbleError::TooManyPages { pages } => {
                write!(f, "layout needs {pages} pages, but page ids are u32")
            }
        }
    }
}

impl std::error::Error for PebbleError {}
