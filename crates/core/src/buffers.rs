//! The `B`-buffer generalization of the pebble game.
//!
//! The paper's game holds exactly **two** pebbles — the two-page buffer
//! pool of its page-fetch ancestry (\[6\]) — and §5 notes that real
//! systems fragment joins "to make better use of main memory". This
//! module asks the natural follow-up: what does a buffer pool of `B > 2`
//! slots buy?
//!
//! Model: a *buffer schedule* is a sequence of steps; each step loads one
//! vertex (tuple/page) into a pool of capacity `B`, naming the resident
//! vertex it evicts when the pool is full. An edge is deleted the moment
//! both its endpoints are resident. Cost = number of loads. For `B = 2`
//! a schedule is exactly a pebbling scheme (each configuration change is
//! one load), so the minimal cost is `π̂(G)`.
//!
//! What the E21-style tests certify:
//!
//! * **the worst case is buffer-fragile**: the spider `G_n` costs
//!   `1.25m` total at `B = 2` (Theorem 3.3) but drops to the `|V|` floor
//!   (every vertex loaded exactly once) already at `B = 3` — keep the
//!   hub resident, stream each leg through the third slot. The paper's
//!   separation lives specifically in the two-pebble regime;
//! * **density sets the buffer demand**: `K_{k,l}` is already optimal at
//!   `B = 2` *for two pebbles* (`π̂ = m + 1`), but reaching the `|V|`
//!   floor takes `B = min(k, l) + 1` — pin the smaller side, stream the
//!   larger;
//! * every schedule respects the floor: each non-isolated vertex loads
//!   at least once ([`lower_bound`]).

use crate::PebbleError;
use jp_graph::{BipartiteGraph, Vertex};
use serde::{Deserialize, Serialize};

/// One schedule step: load `load`, evicting `evict` first if the pool is
/// full (`None` while the pool still has free slots).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadStep {
    /// The vertex brought into the buffer pool.
    pub load: Vertex,
    /// The resident vertex evicted to make room, if the pool was full.
    pub evict: Option<Vertex>,
}

/// A buffer schedule: loads with explicit eviction decisions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferSchedule {
    /// The steps, in order.
    pub steps: Vec<LoadStep>,
}

impl BufferSchedule {
    /// Number of loads (the schedule's cost).
    pub fn cost(&self) -> usize {
        self.steps.len()
    }

    /// Validates the schedule for buffer capacity `buffer` against `g`:
    /// every eviction must name a resident vertex, residency must never
    /// exceed the capacity, loads must not re-load resident vertices, and
    /// every edge of `g` must be covered at some step.
    pub fn validate(&self, g: &BipartiteGraph, buffer: usize) -> Result<(), PebbleError> {
        if buffer < 2 {
            return Err(PebbleError::BufferTooSmall { buffer });
        }
        let mut resident: Vec<Vertex> = Vec::with_capacity(buffer);
        let mut deleted = vec![false; g.edge_count()];
        for (i, step) in self.steps.iter().enumerate() {
            if let Some(w) = step.evict {
                match resident.iter().position(|&x| x == w) {
                    Some(idx) => {
                        resident.swap_remove(idx);
                    }
                    None => return Err(PebbleError::NotCanonical { at: i }),
                }
            }
            if resident.contains(&step.load) || resident.len() >= buffer {
                return Err(PebbleError::NotCanonical { at: i });
            }
            resident.push(step.load);
            // delete every edge now covered by residency
            let v = step.load;
            let partners: Vec<usize> = match v.side {
                jp_graph::Side::Left => g
                    .left_neighbors(v.index)
                    .iter()
                    .filter(|&&r| resident.contains(&Vertex::right(r)))
                    .map(|&r| g.edge_index(v.index, r).expect("adjacent"))
                    .collect(),
                jp_graph::Side::Right => g
                    .right_neighbors(v.index)
                    .iter()
                    .filter(|&&l| resident.contains(&Vertex::left(l)))
                    .map(|&l| g.edge_index(l, v.index).expect("adjacent"))
                    .collect(),
            };
            for e in partners {
                deleted[e] = true;
            }
        }
        match deleted.iter().position(|&d| !d) {
            Some(e) => Err(PebbleError::EdgeNotDeleted { edge: e }),
            None => Ok(()),
        }
    }
}

/// Lower bound on any `B`-buffer schedule: every non-isolated vertex must
/// be loaded at least once.
pub fn lower_bound(g: &BipartiteGraph) -> usize {
    g.vertices().filter(|&v| g.degree(v) > 0).count()
}

/// Greedy `B`-buffer scheduler: processes edges in a good tour order (the
/// boustrophedon order for equijoin graphs, the Euler-trail order
/// otherwise), loading missing endpoints and evicting by furthest next
/// use (Belady) among vertices not needed by the current edge. For
/// `B = 2` this reproduces two-pebble behaviour; for larger `B` reloads
/// fall away.
pub fn schedule_greedy(g: &BipartiteGraph, buffer: usize) -> Result<BufferSchedule, PebbleError> {
    if buffer < 2 {
        return Err(PebbleError::BufferTooSmall { buffer });
    }
    if g.edge_count() == 0 {
        return Ok(BufferSchedule { steps: Vec::new() });
    }
    let scheme = match crate::approx::pebble_equijoin(g) {
        Ok(s) => s,
        Err(PebbleError::NotEquijoinGraph) => crate::approx::pebble_euler_trails(g)?,
        Err(e) => return Err(e),
    };
    let order: Vec<usize> = scheme.deletion_order(g).into_iter().flatten().collect();
    debug_assert_eq!(order.len(), g.edge_count());
    // future-use positions per vertex
    let n = g.vertex_count() as usize;
    let mut uses: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (pos, &e) in order.iter().enumerate() {
        let (u, v) = g.edge_vertices(e);
        uses[g.flat_index(u)].push(pos);
        uses[g.flat_index(v)].push(pos);
    }
    let next_use = |v: Vertex, pos: usize| -> usize {
        let u = &uses[g.flat_index(v)];
        match u.binary_search(&pos) {
            Ok(i) => u[i],
            Err(i) => u.get(i).copied().unwrap_or(usize::MAX),
        }
    };
    let mut resident: Vec<Vertex> = Vec::with_capacity(buffer);
    let mut steps: Vec<LoadStep> = Vec::new();
    for (pos, &e) in order.iter().enumerate() {
        let (u, v) = g.edge_vertices(e);
        for need in [u, v] {
            if !resident.contains(&need) {
                let evict = if resident.len() == buffer {
                    let (evict_idx, _) = resident
                        .iter()
                        .enumerate()
                        .filter(|(_, &w)| w != u && w != v)
                        .max_by_key(|(_, &w)| next_use(w, pos + 1))
                        .expect("buffer >= 2 leaves an evictable slot");
                    Some(resident.swap_remove(evict_idx))
                } else {
                    None
                };
                resident.push(need);
                steps.push(LoadStep { load: need, evict });
            }
        }
    }
    Ok(BufferSchedule { steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jp_graph::generators;

    #[test]
    fn two_buffers_match_pebbling_costs() {
        // B = 2: the schedule is a pebbling; cost within the π̂ window.
        for g in [
            generators::spider(4),
            generators::path(6),
            generators::matching(3),
        ] {
            let s = schedule_greedy(&g, 2).unwrap();
            s.validate(&g, 2).unwrap();
            let m = g.edge_count();
            assert!(s.cost() >= lower_bound(&g).min(m));
            assert!(s.cost() <= 2 * m, "{g}");
        }
        // and on a perfect family B = 2 equals π̂ = m + β₀ exactly
        let k = generators::complete_bipartite(4, 4);
        let s = schedule_greedy(&k, 2).unwrap();
        s.validate(&k, 2).unwrap();
        assert_eq!(s.cost(), k.edge_count() + 1);
    }

    #[test]
    fn three_buffers_collapse_the_spider() {
        // B = 3: keep the hub resident; every vertex loads exactly once —
        // the 1.25 worst case is a two-pebble artifact.
        for n in [4u32, 8, 16] {
            let g = generators::spider(n);
            let s = schedule_greedy(&g, 3).unwrap();
            s.validate(&g, 3).unwrap();
            assert_eq!(s.cost(), lower_bound(&g), "G_{n} at B = 3 hits the floor");
            let two = schedule_greedy(&g, 2).unwrap();
            assert!(two.cost() > s.cost());
        }
    }

    #[test]
    fn complete_bipartite_needs_min_side_plus_one() {
        // K_{4,4}: floor at B = 5 (pin one side), strictly above at B = 3.
        let g = generators::complete_bipartite(4, 4);
        let floor = lower_bound(&g); // 8
        let b5 = schedule_greedy(&g, 5).unwrap();
        b5.validate(&g, 5).unwrap();
        assert_eq!(b5.cost(), floor, "B = min(k,l)+1 pins a side");
        let b3 = schedule_greedy(&g, 3).unwrap();
        b3.validate(&g, 3).unwrap();
        assert!(b3.cost() > floor, "B = 3 must reload on a dense clique");
    }

    #[test]
    fn larger_buffers_never_cost_more() {
        for seed in 0..10 {
            let g = generators::random_connected_bipartite(6, 6, 16, seed);
            let mut prev = usize::MAX;
            for b in [2usize, 3, 4, 8] {
                let s = schedule_greedy(&g, b).unwrap();
                s.validate(&g, b).unwrap();
                assert!(s.cost() <= prev, "seed {seed}, B = {b}");
                assert!(s.cost() >= lower_bound(&g));
                prev = s.cost();
            }
        }
    }

    #[test]
    fn validate_rejects_bad_schedules() {
        let g = generators::path(3);
        // incomplete coverage
        let s = BufferSchedule {
            steps: vec![
                LoadStep {
                    load: Vertex::left(0),
                    evict: None,
                },
                LoadStep {
                    load: Vertex::right(0),
                    evict: None,
                },
            ],
        };
        assert!(matches!(
            s.validate(&g, 2),
            Err(PebbleError::EdgeNotDeleted { .. })
        ));
        // eviction of a non-resident vertex
        let s = BufferSchedule {
            steps: vec![LoadStep {
                load: Vertex::left(0),
                evict: Some(Vertex::right(1)),
            }],
        };
        assert!(matches!(
            s.validate(&g, 2),
            Err(PebbleError::NotCanonical { .. })
        ));
        // overfull pool (no eviction named when needed)
        let s = BufferSchedule {
            steps: vec![
                LoadStep {
                    load: Vertex::left(0),
                    evict: None,
                },
                LoadStep {
                    load: Vertex::right(0),
                    evict: None,
                },
                LoadStep {
                    load: Vertex::left(1),
                    evict: None,
                },
            ],
        };
        assert!(matches!(
            s.validate(&g, 2),
            Err(PebbleError::NotCanonical { at: 2 })
        ));
        // buffer < 2 rejected outright
        assert!(schedule_greedy(&g, 1).is_err());
    }

    #[test]
    fn empty_graph_schedules_trivially() {
        let g = jp_graph::BipartiteGraph::new(2, 2, vec![]);
        let s = schedule_greedy(&g, 4).unwrap();
        assert_eq!(s.cost(), 0);
        s.validate(&g, 4).unwrap();
    }
}
