//! Branch-and-bound exact solver for minimum-jump Hamiltonian paths.
//!
//! [`crate::exact`]'s Held–Karp DP is memory-bound at ~20 line-graph
//! vertices (`2^m` words). This module trades guaranteed polynomial
//! *space* for worst-case exponential time: depth-first search over
//! partial tours with
//!
//! * an incumbent seeded from the greedy path cover + 2-opt (so pruning
//!   starts strong),
//! * an admissible lower bound on remaining jumps: unvisited vertices
//!   whose *unvisited* good-degree is zero must each be entered and left
//!   by jumps, contributing `≥ ⌈(isolated − 1)/1⌉`-ish; we use the safe
//!   count `max(stranded − 1, 0)` where `stranded` counts unvisited
//!   vertices with no unvisited good neighbour and no good edge to the
//!   current endpoint,
//! * a node budget, returning `None` when exhausted (the caller falls
//!   back or reports).
//!
//! Cross-validated against Held–Karp on every instance both can solve.

use crate::approx::path_cover::greedy_path_cover;
use crate::approx::stitch_paths;
use crate::approx::two_opt::improve_two_opt;
use crate::scheme::PebblingScheme;
use crate::tsp::Tsp12;
use crate::PebbleError;
use jp_graph::{BipartiteGraph, ComponentMap, Graph};

/// Search-effort statistics from one [`bb_min_jump_tour`] run.
///
/// Previously buried in the private `Searcher`, these are the signals a
/// caller needs to size a budget: how much of it the search consumed,
/// how well the lower bound pruned, and how often the incumbent moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// DFS nodes expanded.
    pub nodes_expanded: u64,
    /// The node budget the search ran under.
    pub budget: u64,
    /// Subtrees cut because partial jumps alone matched the incumbent.
    pub incumbent_prunes: u64,
    /// Subtrees cut by the admissible lower bound.
    pub lb_prunes: u64,
    /// Times a strictly better tour replaced the incumbent.
    pub incumbent_improvements: u64,
}

impl SearchStats {
    /// Fraction of the node budget consumed, in `[0, 1]`.
    // audit:allow(obs-coverage) accessor — no solver work, nothing to trace
    pub fn budget_used(&self) -> f64 {
        if self.budget == 0 {
            1.0
        } else {
            (self.nodes_expanded as f64 / self.budget as f64).min(1.0)
        }
    }
}

/// Result of a budgeted search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BbOutcome {
    /// Proven optimal tour and its jump count.
    Optimal {
        /// The minimum-jump tour.
        tour: Vec<u32>,
        /// Its jump count.
        jumps: usize,
        /// Search effort expended.
        stats: SearchStats,
    },
    /// Budget exhausted; best tour found so far (not proven optimal).
    BudgetExhausted {
        /// The best tour found.
        tour: Vec<u32>,
        /// Its jump count.
        jumps: usize,
        /// Search effort expended.
        stats: SearchStats,
    },
}

impl BbOutcome {
    /// The tour, optimal or not.
    // audit:allow(obs-coverage) accessor — no solver work, nothing to trace
    pub fn tour(&self) -> &[u32] {
        match self {
            BbOutcome::Optimal { tour, .. } | BbOutcome::BudgetExhausted { tour, .. } => tour,
        }
    }

    /// The jump count of the returned tour.
    // audit:allow(obs-coverage) accessor — no solver work, nothing to trace
    pub fn jumps(&self) -> usize {
        match self {
            BbOutcome::Optimal { jumps, .. } | BbOutcome::BudgetExhausted { jumps, .. } => *jumps,
        }
    }

    /// Whether optimality was proven.
    // audit:allow(obs-coverage) accessor — no solver work, nothing to trace
    pub fn is_optimal(&self) -> bool {
        matches!(self, BbOutcome::Optimal { .. })
    }

    /// Search-effort statistics, regardless of outcome.
    // audit:allow(obs-coverage) accessor — no solver work, nothing to trace
    pub fn stats(&self) -> &SearchStats {
        match self {
            BbOutcome::Optimal { stats, .. } | BbOutcome::BudgetExhausted { stats, .. } => stats,
        }
    }
}

struct Searcher<'a> {
    ones: &'a Graph,
    n: usize,
    best_jumps: usize,
    best_tour: Vec<u32>,
    nodes: u64,
    budget: u64,
    truncated: bool,
    incumbent_prunes: u64,
    lb_prunes: u64,
    incumbent_improvements: u64,
}

impl Searcher<'_> {
    /// Admissible bound — the paper's `B⁺/B⁻` degree-deficiency argument
    /// (Theorem 3.3), applied to the remaining instance: every unvisited
    /// vertex is incident to two remaining-path edges (one for the final
    /// endpoint), and good incidences are capped by its available good
    /// degree `avail(v)` (unvisited neighbours plus the current
    /// endpoint). With `S = Σ max(0, 2 − avail(v)) − 1` bad incidences
    /// forced and each jump absorbing at most two, the remaining jumps
    /// are at least `⌈max(S, 0) / 2⌉`. Tight on the spider family.
    fn lower_bound(&self, visited: &[bool], cur: u32) -> usize {
        let mut deficiency = 0usize;
        for v in 0..self.n as u32 {
            // audit:allow(panic-freedom) vertex ids are < n == visited.len() by construction
            if visited[v as usize] {
                continue;
            }
            let avail = self
                .ones
                .neighbors(v)
                .iter()
                // audit:allow(panic-freedom) vertex ids are < n == visited.len() by construction
                .filter(|&&w| w == cur || !visited[w as usize])
                .take(2)
                .count();
            deficiency += 2 - avail;
        }
        deficiency.saturating_sub(1).div_ceil(2)
    }

    fn dfs(
        &mut self,
        visited: &mut [bool],
        cur: u32,
        placed: usize,
        jumps: usize,
        tour: &mut Vec<u32>,
    ) {
        if self.nodes >= self.budget {
            self.truncated = true;
            return;
        }
        if jumps >= self.best_jumps {
            self.incumbent_prunes += 1;
            return;
        }
        self.nodes += 1;
        if placed == self.n {
            self.best_jumps = jumps;
            self.best_tour = tour.clone();
            self.incumbent_improvements += 1;
            return;
        }
        if jumps + self.lower_bound(visited, cur) >= self.best_jumps {
            self.lb_prunes += 1;
            return;
        }
        // good moves first, lowest unvisited-good-degree first
        let mut good: Vec<(usize, u32)> = self
            .ones
            .neighbors(cur)
            .iter()
            .copied()
            // audit:allow(panic-freedom) vertex ids are < n == visited.len() by construction
            .filter(|&w| !visited[w as usize])
            .map(|w| {
                let deg = self
                    .ones
                    .neighbors(w)
                    .iter()
                    // audit:allow(panic-freedom) vertex ids are < n == visited.len() by construction
                    .filter(|&&x| !visited[x as usize] && x != w)
                    .count();
                (deg, w)
            })
            .collect();
        good.sort_unstable();
        for (_, w) in good {
            // audit:allow(panic-freedom) vertex ids are < n == visited.len() by construction
            visited[w as usize] = true;
            tour.push(w);
            self.dfs(visited, w, placed + 1, jumps, tour);
            tour.pop();
            // audit:allow(panic-freedom) vertex ids are < n == visited.len() by construction
            visited[w as usize] = false;
        }
        // jump moves (cost 1): only try jump targets that are stranded or
        // low-degree first; trying all is required for exactness
        if jumps + 1 < self.best_jumps {
            let mut targets: Vec<(usize, u32)> = (0..self.n as u32)
                // audit:allow(panic-freedom) vertex ids are < n == visited.len() by construction
                .filter(|&w| !visited[w as usize] && !self.ones.has_edge(cur, w))
                .map(|w| {
                    let deg = self
                        .ones
                        .neighbors(w)
                        .iter()
                        // audit:allow(panic-freedom) vertex ids are < n == visited.len() by construction
                        .filter(|&&x| !visited[x as usize])
                        .count();
                    (deg, w)
                })
                .collect();
            targets.sort_unstable();
            for (_, w) in targets {
                // audit:allow(panic-freedom) vertex ids are < n == visited.len() by construction
                visited[w as usize] = true;
                tour.push(w);
                self.dfs(visited, w, placed + 1, jumps + 1, tour);
                tour.pop();
                // audit:allow(panic-freedom) vertex ids are < n == visited.len() by construction
                visited[w as usize] = false;
            }
        }
    }
}

/// Minimum-jump Hamiltonian path by branch and bound with a node budget.
pub fn bb_min_jump_tour(ones: &Graph, budget: u64) -> BbOutcome {
    let _span = jp_obs::span("bb", "search");
    let n = ones.vertex_count() as usize;
    if n == 0 {
        return BbOutcome::Optimal {
            tour: Vec::new(),
            jumps: 0,
            stats: SearchStats {
                budget,
                ..SearchStats::default()
            },
        };
    }
    // incumbent: greedy path cover, stitched and 2-opted
    let mut incumbent = stitch_paths(ones, greedy_path_cover(ones));
    let tsp = Tsp12::new(ones.clone());
    improve_two_opt(&tsp, &mut incumbent, 6);
    let inc_jumps = tsp.tour_jumps(&incumbent);
    let mut s = Searcher {
        ones,
        n,
        best_jumps: inc_jumps, // search only for strictly better tours
        best_tour: incumbent,
        nodes: 0,
        budget,
        truncated: false,
        incumbent_prunes: 0,
        lb_prunes: 0,
        incumbent_improvements: 0,
    };
    if inc_jumps > 0 {
        // try every start vertex, lowest degree first
        let mut starts: Vec<(usize, u32)> = (0..n as u32).map(|v| (ones.degree(v), v)).collect();
        starts.sort_unstable();
        let mut visited = vec![false; n];
        let mut tour = Vec::with_capacity(n);
        for (_, v) in starts {
            // audit:allow(panic-freedom) vertex ids are < n == visited.len() by construction
            visited[v as usize] = true;
            tour.push(v);
            s.dfs(&mut visited, v, 1, 0, &mut tour);
            tour.pop();
            // audit:allow(panic-freedom) vertex ids are < n == visited.len() by construction
            visited[v as usize] = false;
            if s.best_jumps == 0 {
                break; // zero jumps cannot be beaten: proven optimal
            }
            if s.nodes >= s.budget {
                s.truncated = true; // starts remain unexplored
                break;
            }
        }
    }
    let proven = !s.truncated;
    // best_jumps was initialized to incumbent+1; if the search improved,
    // best_tour holds the better tour, else the incumbent stands.
    let tour = s.best_tour;
    let final_jumps = tsp.tour_jumps(&tour);
    debug_assert!(final_jumps <= inc_jumps);
    let stats = SearchStats {
        nodes_expanded: s.nodes,
        budget,
        incumbent_prunes: s.incumbent_prunes,
        lb_prunes: s.lb_prunes,
        incumbent_improvements: s.incumbent_improvements,
    };
    if jp_obs::enabled() {
        jp_obs::counter("bb", "nodes_expanded", stats.nodes_expanded);
        jp_obs::counter("bb", "incumbent_prunes", stats.incumbent_prunes);
        jp_obs::counter("bb", "lb_prunes", stats.lb_prunes);
        jp_obs::counter("bb", "incumbent_improvements", stats.incumbent_improvements);
        jp_obs::counter("bb", "budget", stats.budget);
        jp_obs::counter(
            "bb",
            "budget_used_permille",
            (stats.budget_used() * 1000.0) as u64,
        );
        jp_obs::counter("bb", "truncated", u64::from(!proven));
    }
    if proven {
        BbOutcome::Optimal {
            tour,
            jumps: final_jumps,
            stats,
        }
    } else {
        BbOutcome::BudgetExhausted {
            tour,
            jumps: final_jumps,
            stats,
        }
    }
}

/// Optimal effective cost by branch and bound (per component). Returns
/// [`PebbleError::BudgetExhausted`] when optimality was not proven
/// within `budget` search nodes on some component.
// audit:allow(obs-coverage) per-component driver — bb_min_jump_tour opens the bb.search span
pub fn optimal_effective_cost_bb(g: &BipartiteGraph, budget: u64) -> Result<usize, PebbleError> {
    let cm = ComponentMap::new(g);
    let mut total = 0usize;
    for edges in cm.edges_by_component() {
        let sub = g.edge_subgraph(&edges);
        let lg = jp_graph::line_graph(&sub);
        match bb_min_jump_tour(&lg, budget) {
            BbOutcome::Optimal { jumps, .. } => total += edges.len() + jumps,
            BbOutcome::BudgetExhausted { stats, .. } => {
                return Err(PebbleError::BudgetExhausted {
                    budget,
                    nodes: stats.nodes_expanded,
                })
            }
        }
    }
    Ok(total)
}

/// Optimal scheme via branch and bound.
// audit:allow(obs-coverage) per-component driver — bb_min_jump_tour opens the bb.search span
pub fn optimal_scheme_bb(g: &BipartiteGraph, budget: u64) -> Result<PebblingScheme, PebbleError> {
    let cm = ComponentMap::new(g);
    let mut order: Vec<usize> = Vec::with_capacity(g.edge_count());
    for edges in cm.edges_by_component() {
        let sub = g.edge_subgraph(&edges);
        let lg = jp_graph::line_graph(&sub);
        match bb_min_jump_tour(&lg, budget) {
            BbOutcome::Optimal { tour, .. } => {
                // audit:allow(panic-freedom) tour is a permutation of line-graph vertices 0..edges.len()
                order.extend(tour.iter().map(|&e| edges[e as usize]));
            }
            BbOutcome::BudgetExhausted { stats, .. } => {
                return Err(PebbleError::BudgetExhausted {
                    budget,
                    nodes: stats.nodes_expanded,
                })
            }
        }
    }
    PebblingScheme::from_edge_sequence(g, &order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use jp_graph::{generators, line_graph};

    const BUDGET: u64 = 5_000_000;

    #[test]
    fn agrees_with_held_karp_on_families() {
        for g in [
            generators::spider(5),
            generators::path(8),
            generators::complete_bipartite(3, 4),
            generators::cycle(4),
            generators::star(6),
        ] {
            let hk = exact::optimal_effective_cost(&g).unwrap();
            let bb = optimal_effective_cost_bb(&g, BUDGET).unwrap();
            assert_eq!(bb, hk, "{g}");
        }
    }

    #[test]
    fn agrees_with_held_karp_on_random_graphs() {
        for seed in 0..20 {
            let g = generators::random_connected_bipartite(5, 5, 13, seed);
            let hk = exact::optimal_effective_cost(&g).unwrap();
            let bb = optimal_effective_cost_bb(&g, BUDGET).unwrap();
            assert_eq!(bb, hk, "seed {seed}");
        }
    }

    #[test]
    fn reaches_beyond_held_karp_memory_limit() {
        // G_12 has m = 24 > MAX_EXACT_EDGES; closed form is known.
        let g = generators::spider(12);
        assert!(exact::optimal_effective_cost(&g).is_err());
        let bb = optimal_effective_cost_bb(&g, BUDGET).unwrap();
        assert_eq!(bb as u64, crate::families::spider_optimal_cost(12));
    }

    #[test]
    fn scheme_is_valid_and_optimal() {
        let g = generators::random_connected_bipartite(4, 5, 11, 3);
        let s = optimal_scheme_bb(&g, BUDGET).unwrap();
        s.validate(&g).unwrap();
        assert_eq!(
            s.effective_cost(&g),
            exact::optimal_effective_cost(&g).unwrap()
        );
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // budget of 1 node cannot prove anything non-trivial
        let g = generators::spider(6);
        let lg = line_graph(&g);
        let out = bb_min_jump_tour(&lg, 1);
        assert!(!out.is_optimal());
        // but the incumbent is still a valid tour
        let tsp = Tsp12::new(lg);
        assert!(tsp.is_valid_tour(out.tour()));
    }

    #[test]
    fn zero_jump_instances_terminate_immediately() {
        // star: L = K_n, incumbent already perfect, no search needed
        let g = generators::star(30);
        let bb = optimal_effective_cost_bb(&g, 10).unwrap();
        assert_eq!(bb, 30);
    }

    #[test]
    fn outcome_accessors() {
        let g = generators::path(4);
        let lg = line_graph(&g);
        let out = bb_min_jump_tour(&lg, BUDGET);
        assert!(out.is_optimal());
        assert_eq!(out.jumps(), 0);
        assert_eq!(out.tour().len(), 4);
    }
}
