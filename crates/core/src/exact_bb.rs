//! Branch-and-bound exact solver for minimum-jump Hamiltonian paths.
//!
//! [`crate::exact`]'s Held–Karp DP is memory-bound at ~20 line-graph
//! vertices (`2^m` words). This module trades guaranteed polynomial
//! *space* for worst-case exponential time: depth-first search over
//! partial tours with
//!
//! * an incumbent seeded from the greedy path cover + 2-opt (so pruning
//!   starts strong),
//! * an admissible lower bound on remaining jumps: unvisited vertices
//!   whose *unvisited* good-degree is zero must each be entered and left
//!   by jumps, contributing `≥ ⌈(isolated − 1)/1⌉`-ish; we use the safe
//!   count `max(stranded − 1, 0)` where `stranded` counts unvisited
//!   vertices with no unvisited good neighbour and no good edge to the
//!   current endpoint,
//! * a node budget, returning `None` when exhausted (the caller falls
//!   back or reports).
//!
//! The search is parallel by construction: every start vertex is a root
//! task on the `jp-par` work-stealing runtime, and all workers share one
//! `SharedSearch` — the incumbent jump count lives in an `AtomicUsize`,
//! so the moment one worker improves it, every other subtree prunes
//! against the better bound. The node budget is a shared pool claimed in
//! small chunks, which keeps total expansions within the budget without a
//! per-node contended atomic. [`bb_min_jump_tour`] is the one-worker
//! case of [`bb_min_jump_tour_par`] — same code path, strictly
//! sequential schedule.
//!
//! Cross-validated against Held–Karp on every instance both can solve.

use crate::approx::path_cover::greedy_path_cover;
use crate::approx::stitch_paths;
use crate::approx::two_opt::improve_two_opt;
use crate::scheme::PebblingScheme;
use crate::tsp::Tsp12;
use crate::PebbleError;
use jp_graph::{BipartiteGraph, ComponentMap, Graph};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Search-effort statistics from one [`bb_min_jump_tour`] run.
///
/// Previously buried in the private `Searcher`, these are the signals a
/// caller needs to size a budget: how much of it the search consumed,
/// how well the lower bound pruned, and how often the incumbent moved.
/// In parallel runs the counts are aggregated across all workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// DFS nodes expanded (summed over workers).
    pub nodes_expanded: u64,
    /// The node budget the search ran under.
    pub budget: u64,
    /// Subtrees cut because partial jumps alone matched the incumbent.
    pub incumbent_prunes: u64,
    /// Subtrees cut by the admissible lower bound.
    pub lb_prunes: u64,
    /// Times a strictly better tour replaced the incumbent.
    pub incumbent_improvements: u64,
}

impl SearchStats {
    /// Fraction of the node budget consumed, in `[0, 1]`.
    // audit:allow(obs-coverage) accessor — no solver work, nothing to trace
    pub fn budget_used(&self) -> f64 {
        if self.budget == 0 {
            1.0
        } else {
            (self.nodes_expanded as f64 / self.budget as f64).min(1.0)
        }
    }
}

/// Result of a budgeted search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BbOutcome {
    /// Proven optimal tour and its jump count.
    Optimal {
        /// The minimum-jump tour.
        tour: Vec<u32>,
        /// Its jump count.
        jumps: usize,
        /// Search effort expended.
        stats: SearchStats,
    },
    /// Budget exhausted; best tour found so far (not proven optimal).
    BudgetExhausted {
        /// The best tour found.
        tour: Vec<u32>,
        /// Its jump count.
        jumps: usize,
        /// Search effort expended.
        stats: SearchStats,
    },
}

impl BbOutcome {
    /// The tour, optimal or not.
    // audit:allow(obs-coverage) accessor — no solver work, nothing to trace
    pub fn tour(&self) -> &[u32] {
        match self {
            BbOutcome::Optimal { tour, .. } | BbOutcome::BudgetExhausted { tour, .. } => tour,
        }
    }

    /// The jump count of the returned tour.
    // audit:allow(obs-coverage) accessor — no solver work, nothing to trace
    pub fn jumps(&self) -> usize {
        match self {
            BbOutcome::Optimal { jumps, .. } | BbOutcome::BudgetExhausted { jumps, .. } => *jumps,
        }
    }

    /// Whether optimality was proven.
    // audit:allow(obs-coverage) accessor — no solver work, nothing to trace
    pub fn is_optimal(&self) -> bool {
        matches!(self, BbOutcome::Optimal { .. })
    }

    /// Search-effort statistics, regardless of outcome.
    // audit:allow(obs-coverage) accessor — no solver work, nothing to trace
    pub fn stats(&self) -> &SearchStats {
        match self {
            BbOutcome::Optimal { stats, .. } | BbOutcome::BudgetExhausted { stats, .. } => stats,
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Budget chunk each worker claims from the shared pool at a time: large
/// enough to keep the shared counter off the per-node hot path, small
/// enough that the total expansion overshoot is negligible (at most one
/// chunk per worker below the claimed total).
const CLAIM_CHUNK: u64 = 256;

/// State shared by every worker of one branch-and-bound run.
struct SharedSearch {
    /// Global upper bound: the best jump count found by *any* worker.
    /// An improvement here immediately strengthens every other worker's
    /// pruning — the point of sharing the incumbent.
    best_jumps: AtomicUsize,
    /// The tour realizing `best_jumps`; writers serialize on the lock
    /// and re-check `best_jumps` inside it, so jumps and tour stay
    /// consistent.
    best_tour: Mutex<Vec<u32>>,
    /// Incumbent improvements across all workers.
    improvements: AtomicU64,
    /// Node-budget pool: total claimed so far (may overshoot `budget` by
    /// up to one chunk per worker; actual expansions never do).
    claimed: AtomicU64,
    budget: u64,
    /// Set when any worker ran out of budget: optimality is unproven.
    truncated: AtomicBool,
}

impl SharedSearch {
    fn offer(&self, jumps: usize, tour: &[u32]) {
        let improved = {
            let mut guard = lock(&self.best_tour);
            // race:order(writers serialize on best_tour and re-check under it; readers prune against a possibly-stale bound, which is safe)
            if jumps < self.best_jumps.load(Ordering::Relaxed) {
                self.best_jumps.store(jumps, Ordering::Relaxed);
                *guard = tour.to_vec();
                true
            } else {
                false
            }
        };
        if improved {
            // race:order(monotonic statistic, read after the scoped join)
            self.improvements.fetch_add(1, Ordering::Relaxed);
            // Live incumbent after the guard is gone: `jp pulse top`
            // shows the bound tightening while the search runs.
            jp_pulse::gauge_set("bb.incumbent_jumps", jumps as u64);
        }
    }
}

/// Per-worker search state; all pruning bounds come from [`SharedSearch`].
struct Searcher<'a> {
    ones: &'a Graph,
    n: usize,
    shared: &'a SharedSearch,
    /// Locally claimed budget not yet spent.
    allowance: u64,
    /// Nodes this worker actually expanded (exact, unlike `claimed`).
    nodes: u64,
    truncated: bool,
    incumbent_prunes: u64,
    lb_prunes: u64,
}

impl Searcher<'_> {
    /// Claims the right to expand one node, drawing on the shared pool
    /// in chunks. Returns `false` when the budget is exhausted.
    fn try_claim(&mut self) -> bool {
        if self.allowance == 0 {
            let prev = self
                .shared
                .claimed
                // race:order(monotone pool counter; overshoot is bounded by one chunk per worker and expansions are counted exactly per worker)
                .fetch_add(CLAIM_CHUNK, Ordering::Relaxed);
            if prev >= self.shared.budget {
                return false;
            }
            self.allowance = CLAIM_CHUNK.min(self.shared.budget - prev);
        }
        self.allowance -= 1;
        self.nodes += 1;
        true
    }

    /// Admissible bound — the paper's `B⁺/B⁻` degree-deficiency argument
    /// (Theorem 3.3), applied to the remaining instance: every unvisited
    /// vertex is incident to two remaining-path edges (one for the final
    /// endpoint), and good incidences are capped by its available good
    /// degree `avail(v)` (unvisited neighbours plus the current
    /// endpoint). With `S = Σ max(0, 2 − avail(v)) − 1` bad incidences
    /// forced and each jump absorbing at most two, the remaining jumps
    /// are at least `⌈max(S, 0) / 2⌉`. Tight on the spider family.
    fn lower_bound(&self, visited: &[bool], cur: u32) -> usize {
        let mut deficiency = 0usize;
        for v in 0..self.n as u32 {
            // audit:allow(panic-freedom) vertex ids are < n == visited.len() by construction
            if visited[v as usize] {
                continue;
            }
            let avail = self
                .ones
                .neighbors(v)
                .iter()
                // audit:allow(panic-freedom) vertex ids are < n == visited.len() by construction
                .filter(|&&w| w == cur || !visited[w as usize])
                .take(2)
                .count();
            deficiency += 2 - avail;
        }
        deficiency.saturating_sub(1).div_ceil(2)
    }

    fn dfs(
        &mut self,
        visited: &mut [bool],
        cur: u32,
        placed: usize,
        jumps: usize,
        tour: &mut Vec<u32>,
    ) {
        // race:order(pruning against a stale bound is safe — it only delays the cut, never removes the optimum)
        if jumps >= self.shared.best_jumps.load(Ordering::Relaxed) {
            self.incumbent_prunes += 1;
            return;
        }
        if !self.try_claim() {
            self.truncated = true;
            return;
        }
        if placed == self.n {
            self.shared.offer(jumps, tour);
            return;
        }
        // race:order(pruning against a stale bound is safe — it only delays the cut, never removes the optimum)
        if jumps + self.lower_bound(visited, cur) >= self.shared.best_jumps.load(Ordering::Relaxed)
        {
            self.lb_prunes += 1;
            return;
        }
        // good moves first, lowest unvisited-good-degree first
        let mut good: Vec<(usize, u32)> = self
            .ones
            .neighbors(cur)
            .iter()
            .copied()
            // audit:allow(panic-freedom) vertex ids are < n == visited.len() by construction
            .filter(|&w| !visited[w as usize])
            .map(|w| {
                let deg = self
                    .ones
                    .neighbors(w)
                    .iter()
                    // audit:allow(panic-freedom) vertex ids are < n == visited.len() by construction
                    .filter(|&&x| !visited[x as usize] && x != w)
                    .count();
                (deg, w)
            })
            .collect();
        good.sort_unstable();
        for (_, w) in good {
            // audit:allow(panic-freedom) vertex ids are < n == visited.len() by construction
            visited[w as usize] = true;
            tour.push(w);
            self.dfs(visited, w, placed + 1, jumps, tour);
            tour.pop();
            // audit:allow(panic-freedom) vertex ids are < n == visited.len() by construction
            visited[w as usize] = false;
        }
        // jump moves (cost 1): only try jump targets that are stranded or
        // low-degree first; trying all is required for exactness
        // race:order(pruning against a stale bound is safe — it only delays the cut, never removes the optimum)
        if jumps + 1 < self.shared.best_jumps.load(Ordering::Relaxed) {
            let mut targets: Vec<(usize, u32)> = (0..self.n as u32)
                // audit:allow(panic-freedom) vertex ids are < n == visited.len() by construction
                .filter(|&w| !visited[w as usize] && !self.ones.has_edge(cur, w))
                .map(|w| {
                    let deg = self
                        .ones
                        .neighbors(w)
                        .iter()
                        // audit:allow(panic-freedom) vertex ids are < n == visited.len() by construction
                        .filter(|&&x| !visited[x as usize])
                        .count();
                    (deg, w)
                })
                .collect();
            targets.sort_unstable();
            for (_, w) in targets {
                // audit:allow(panic-freedom) vertex ids are < n == visited.len() by construction
                visited[w as usize] = true;
                tour.push(w);
                self.dfs(visited, w, placed + 1, jumps + 1, tour);
                tour.pop();
                // audit:allow(panic-freedom) vertex ids are < n == visited.len() by construction
                visited[w as usize] = false;
            }
        }
    }
}

/// Search effort of one root task (one start vertex).
#[derive(Default)]
struct TaskEffort {
    nodes: u64,
    incumbent_prunes: u64,
    lb_prunes: u64,
}

/// Minimum-jump Hamiltonian path by branch and bound with a node budget
/// — the one-worker case of [`bb_min_jump_tour_par`].
// audit:allow(obs-coverage) thin wrapper — bb_min_jump_tour_par opens the bb.search span
pub fn bb_min_jump_tour(ones: &Graph, budget: u64) -> BbOutcome {
    bb_min_jump_tour_par(ones, budget, 1)
}

/// Minimum-jump Hamiltonian path by parallel branch and bound: every
/// start vertex is a root task on the `jp-par` work-stealing runtime,
/// and all workers prune against one shared atomic incumbent.
///
/// With `threads == 1` the schedule is strictly sequential (start
/// vertices in lowest-degree-first order, exactly the historical
/// behaviour). Any thread count returns the same jump count whenever the
/// budget suffices to prove optimality — only the tour and the
/// per-worker effort split may differ.
pub fn bb_min_jump_tour_par(ones: &Graph, budget: u64, threads: usize) -> BbOutcome {
    let _span = jp_obs::span("bb", "search");
    let _mem = jp_pulse::mem_scope(jp_pulse::MemScope::Solver);
    let n = ones.vertex_count() as usize;
    if n == 0 {
        return BbOutcome::Optimal {
            tour: Vec::new(),
            jumps: 0,
            stats: SearchStats {
                budget,
                ..SearchStats::default()
            },
        };
    }
    // incumbent: greedy path cover, stitched and 2-opted
    let mut incumbent = stitch_paths(ones, greedy_path_cover(ones));
    let tsp = Tsp12::new(ones.clone());
    improve_two_opt(&tsp, &mut incumbent, 6);
    let inc_jumps = tsp.tour_jumps(&incumbent);
    let shared = SharedSearch {
        best_jumps: AtomicUsize::new(inc_jumps), // search only for strictly better tours
        best_tour: Mutex::new(incumbent),
        improvements: AtomicU64::new(0),
        claimed: AtomicU64::new(0),
        budget,
        truncated: AtomicBool::new(false),
    };
    let mut stats = SearchStats {
        budget,
        ..SearchStats::default()
    };
    if inc_jumps > 0 {
        // one root task per start vertex, lowest degree first
        let mut starts: Vec<(usize, u32)> = (0..n as u32).map(|v| (ones.degree(v), v)).collect();
        starts.sort_unstable();
        let shared_ref = &shared;
        let efforts = jp_par::run_tasks(threads, starts, |_, (_, v)| {
            // zero jumps cannot be beaten, and a blown budget means the
            // remaining starts stay unexplored either way
            // race:order(stale reads of either flag only delay the early-out by one task)
            if shared_ref.best_jumps.load(Ordering::Relaxed) == 0
                || shared_ref.truncated.load(Ordering::Relaxed)
            {
                return TaskEffort::default();
            }
            let mut searcher = Searcher {
                ones,
                n,
                shared: shared_ref,
                allowance: 0,
                nodes: 0,
                truncated: false,
                incumbent_prunes: 0,
                lb_prunes: 0,
            };
            let mut visited = vec![false; n];
            let mut tour = Vec::with_capacity(n);
            // audit:allow(panic-freedom) vertex ids are < n == visited.len() by construction
            visited[v as usize] = true;
            tour.push(v);
            searcher.dfs(&mut visited, v, 1, 0, &mut tour);
            if searcher.truncated {
                // race:order(one-way latch, definitively read only after the run_tasks join)
                shared_ref.truncated.store(true, Ordering::Relaxed);
            }
            jp_pulse::counter_add("bb.nodes_expanded", searcher.nodes);
            TaskEffort {
                nodes: searcher.nodes,
                incumbent_prunes: searcher.incumbent_prunes,
                lb_prunes: searcher.lb_prunes,
            }
        });
        for effort in &efforts {
            stats.nodes_expanded += effort.nodes;
            stats.incumbent_prunes += effort.incumbent_prunes;
            stats.lb_prunes += effort.lb_prunes;
        }
    }
    // race:order(both reads happen after the run_tasks join, which synchronizes all worker writes)
    let proven = !shared.truncated.load(Ordering::Relaxed);
    stats.incumbent_improvements = shared.improvements.load(Ordering::Relaxed);
    // best_jumps only improves on the seed; if the search found a better
    // tour, best_tour holds it, else the incumbent stands.
    let tour = lock(&shared.best_tour).clone();
    let final_jumps = tsp.tour_jumps(&tour);
    debug_assert!(final_jumps <= inc_jumps);
    if jp_obs::enabled() {
        jp_obs::counter("bb", "workers", threads.max(1) as u64);
        jp_obs::counter("bb", "nodes_expanded", stats.nodes_expanded);
        jp_obs::counter("bb", "incumbent_prunes", stats.incumbent_prunes);
        jp_obs::counter("bb", "lb_prunes", stats.lb_prunes);
        jp_obs::counter("bb", "incumbent_improvements", stats.incumbent_improvements);
        jp_obs::counter("bb", "budget", stats.budget);
        jp_obs::counter(
            "bb",
            "budget_used_permille",
            (stats.budget_used() * 1000.0) as u64,
        );
        jp_obs::counter("bb", "truncated", u64::from(!proven));
    }
    if proven {
        BbOutcome::Optimal {
            tour,
            jumps: final_jumps,
            stats,
        }
    } else {
        BbOutcome::BudgetExhausted {
            tour,
            jumps: final_jumps,
            stats,
        }
    }
}

/// Optimal effective cost by branch and bound (per component). Returns
/// [`PebbleError::BudgetExhausted`] when optimality was not proven
/// within `budget` search nodes on some component.
// audit:allow(obs-coverage) per-component driver — bb_min_jump_tour opens the bb.search span
pub fn optimal_effective_cost_bb(g: &BipartiteGraph, budget: u64) -> Result<usize, PebbleError> {
    optimal_effective_cost_bb_par(g, budget, 1)
}

/// [`optimal_effective_cost_bb`] with each component searched by
/// `threads` parallel workers sharing one incumbent.
// audit:allow(obs-coverage) per-component driver — bb_min_jump_tour_par opens the bb.search span
pub fn optimal_effective_cost_bb_par(
    g: &BipartiteGraph,
    budget: u64,
    threads: usize,
) -> Result<usize, PebbleError> {
    let cm = ComponentMap::new(g);
    let mut total = 0usize;
    for edges in cm.edges_by_component() {
        let sub = g.edge_subgraph(&edges);
        let lg = jp_graph::line_graph(&sub);
        match bb_min_jump_tour_par(&lg, budget, threads) {
            BbOutcome::Optimal { jumps, .. } => total += edges.len() + jumps,
            BbOutcome::BudgetExhausted { stats, .. } => {
                return Err(PebbleError::BudgetExhausted {
                    budget,
                    nodes: stats.nodes_expanded,
                })
            }
        }
    }
    Ok(total)
}

/// Optimal scheme via branch and bound.
// audit:allow(obs-coverage) per-component driver — bb_min_jump_tour opens the bb.search span
pub fn optimal_scheme_bb(g: &BipartiteGraph, budget: u64) -> Result<PebblingScheme, PebbleError> {
    optimal_scheme_bb_par(g, budget, 1)
}

/// [`optimal_scheme_bb`] with each component searched by `threads`
/// parallel workers sharing one incumbent.
// audit:allow(obs-coverage) per-component driver — bb_min_jump_tour_par opens the bb.search span
pub fn optimal_scheme_bb_par(
    g: &BipartiteGraph,
    budget: u64,
    threads: usize,
) -> Result<PebblingScheme, PebbleError> {
    let cm = ComponentMap::new(g);
    let mut order: Vec<usize> = Vec::with_capacity(g.edge_count());
    for edges in cm.edges_by_component() {
        let sub = g.edge_subgraph(&edges);
        let lg = jp_graph::line_graph(&sub);
        match bb_min_jump_tour_par(&lg, budget, threads) {
            BbOutcome::Optimal { tour, .. } => {
                // audit:allow(panic-freedom) tour is a permutation of line-graph vertices 0..edges.len()
                order.extend(tour.iter().map(|&e| edges[e as usize]));
            }
            BbOutcome::BudgetExhausted { stats, .. } => {
                return Err(PebbleError::BudgetExhausted {
                    budget,
                    nodes: stats.nodes_expanded,
                })
            }
        }
    }
    PebblingScheme::from_edge_sequence(g, &order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use jp_graph::{generators, line_graph};

    const BUDGET: u64 = 5_000_000;

    #[test]
    fn agrees_with_held_karp_on_families() {
        for g in [
            generators::spider(5),
            generators::path(8),
            generators::complete_bipartite(3, 4),
            generators::cycle(4),
            generators::star(6),
        ] {
            let hk = exact::optimal_effective_cost(&g).unwrap();
            let bb = optimal_effective_cost_bb(&g, BUDGET).unwrap();
            assert_eq!(bb, hk, "{g}");
        }
    }

    #[test]
    fn agrees_with_held_karp_on_random_graphs() {
        for seed in 0..20 {
            let g = generators::random_connected_bipartite(5, 5, 13, seed);
            let hk = exact::optimal_effective_cost(&g).unwrap();
            let bb = optimal_effective_cost_bb(&g, BUDGET).unwrap();
            assert_eq!(bb, hk, "seed {seed}");
        }
    }

    #[test]
    fn reaches_beyond_held_karp_memory_limit() {
        // G_12 has m = 24 > MAX_EXACT_EDGES; closed form is known.
        let g = generators::spider(12);
        assert!(exact::optimal_effective_cost(&g).is_err());
        let bb = optimal_effective_cost_bb(&g, BUDGET).unwrap();
        assert_eq!(bb as u64, crate::families::spider_optimal_cost(12));
    }

    #[test]
    fn scheme_is_valid_and_optimal() {
        let g = generators::random_connected_bipartite(4, 5, 11, 3);
        let s = optimal_scheme_bb(&g, BUDGET).unwrap();
        s.validate(&g).unwrap();
        assert_eq!(
            s.effective_cost(&g),
            exact::optimal_effective_cost(&g).unwrap()
        );
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // budget of 1 node cannot prove anything non-trivial
        let g = generators::spider(6);
        let lg = line_graph(&g);
        let out = bb_min_jump_tour(&lg, 1);
        assert!(!out.is_optimal());
        // but the incumbent is still a valid tour
        let tsp = Tsp12::new(lg);
        assert!(tsp.is_valid_tour(out.tour()));
    }

    #[test]
    fn zero_jump_instances_terminate_immediately() {
        // star: L = K_n, incumbent already perfect, no search needed
        let g = generators::star(30);
        let bb = optimal_effective_cost_bb(&g, 10).unwrap();
        assert_eq!(bb, 30);
    }

    #[test]
    fn outcome_accessors() {
        let g = generators::path(4);
        let lg = line_graph(&g);
        let out = bb_min_jump_tour(&lg, BUDGET);
        assert!(out.is_optimal());
        assert_eq!(out.jumps(), 0);
        assert_eq!(out.tour().len(), 4);
    }

    #[test]
    fn parallel_cost_matches_sequential_on_families() {
        for g in [
            generators::spider(6),
            generators::complete_bipartite(3, 4),
            generators::random_connected_bipartite(5, 5, 14, 9),
        ] {
            let seq = optimal_effective_cost_bb(&g, BUDGET).unwrap();
            for threads in [2, 8] {
                let par = optimal_effective_cost_bb_par(&g, BUDGET, threads).unwrap();
                assert_eq!(par, seq, "{g} at {threads} threads");
            }
        }
    }

    #[test]
    fn parallel_scheme_is_valid_and_optimal() {
        let g = generators::random_connected_bipartite(4, 5, 11, 3);
        let s = optimal_scheme_bb_par(&g, BUDGET, 4).unwrap();
        s.validate(&g).unwrap();
        assert_eq!(
            s.effective_cost(&g),
            exact::optimal_effective_cost(&g).unwrap()
        );
    }

    #[test]
    fn parallel_budget_exhaustion_is_reported() {
        let g = generators::spider(6);
        let lg = line_graph(&g);
        let out = bb_min_jump_tour_par(&lg, 1, 4);
        assert!(!out.is_optimal());
        assert!(out.stats().nodes_expanded <= 1, "budget is a hard cap");
    }

    #[test]
    fn parallel_node_total_respects_budget() {
        // expansions (unlike the claim counter) must never exceed budget
        let g = generators::spider(8);
        let lg = line_graph(&g);
        for threads in [1, 4] {
            let out = bb_min_jump_tour_par(&lg, 1000, threads);
            assert!(
                out.stats().nodes_expanded <= 1000,
                "threads = {threads}, nodes = {}",
                out.stats().nodes_expanded
            );
        }
    }
}
