//! Cyclic-query join graphs through the pebbling pipeline.
//!
//! The join graph of a conjunctive query (triangle, 4-clique, bowtie)
//! is the disjoint union of its pairwise shared-variable equijoin
//! graphs — every component is a complete bipartite block, so the §3
//! recognizers must classify it as an equijoin graph, the memoized
//! solver must serve it from closed forms, and the pebbling cost must
//! be perfect (π = m) at every thread count.

use jp_graph::properties;
use jp_pebble::memo::{memoized_effective_cost, solve_with_memo, Memo};
use jp_pebble::portfolio::portfolio_effective_cost;
use jp_relalg::{query_join_graph, workload};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn query_join_graphs_are_equijoin_class_and_pebble_perfectly() {
    let instances = vec![
        workload::triangle_random(60, 4, 31),
        workload::triangle_skewed(40, 32),
        workload::clique4_random(50, 3, 33),
        workload::bowtie_random(50, 3, 34),
    ];
    for (q, rels) in instances {
        let g = query_join_graph(&q, &rels).unwrap();
        let (g, _, _) = g.strip_isolated();
        assert!(
            properties::is_equijoin_graph(&g),
            "{}: pairwise shared-variable graphs are unions of complete \
             bipartite blocks",
            q.name()
        );
        let m = g.edge_count();
        let fresh = portfolio_effective_cost(&g, 1).unwrap();
        assert_eq!(fresh, m, "{}: equijoin graphs pebble perfectly", q.name());
        let memo = Memo::new();
        for threads in THREAD_COUNTS {
            let cost = memoized_effective_cost(&g, &memo, threads).unwrap();
            assert_eq!(cost, fresh, "{} at {threads} threads", q.name());
        }
        // Complete bipartite blocks are closed-form families: the memo
        // recognizes them without touching the solver ladder.
        let st = memo.stats();
        assert_eq!(st.misses, 0, "{}: no component should miss", q.name());
    }
}

#[test]
fn memoized_scheme_on_query_graph_validates() {
    let (q, rels) = workload::triangle_skewed(32, 35);
    let g = query_join_graph(&q, &rels).unwrap();
    let memo = Memo::new();
    let s = solve_with_memo(&g, &memo, 2).unwrap();
    s.validate(&g).unwrap();
    assert_eq!(s.effective_cost(&g), g.edge_count());
    assert_eq!(q.name(), "triangle");
}
