//! Property tests for the jp-memo cache: memoization must be invisible
//! in the answers. For every generator family and every thread count the
//! memoized cost equals the fresh portfolio cost — a cache hit serving a
//! wrong or mislabeled scheme would show up here immediately — and a
//! second pass over a shuffled workload of already-seen shapes must be
//! served almost entirely without touching the solver ladder.

use jp_graph::{generators, BipartiteGraph};
use jp_pebble::memo::{memoized_effective_cost, solve_with_memo, Memo};
use jp_pebble::portfolio::portfolio_effective_cost;
use jp_pebble::{bounds, exact};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Every generator family at assorted sizes — the shapes a
/// repeated-family workload is made of. The vendored proptest has no
/// `prop_oneof`, so the family is picked by an integer selector.
fn family_graph() -> impl Strategy<Value = BipartiteGraph> {
    (0u32..9, 1u32..=6, 1u32..=6, any::<u64>()).prop_map(|(which, a, b, seed)| match which {
        0 => generators::complete_bipartite(a, b),
        1 => generators::matching(a + b),
        2 => generators::path(2 * a + b),
        3 => generators::cycle(a.max(2)),
        4 => generators::star(a + b),
        5 => generators::spider(a + 2),
        6 => generators::crown(a.clamp(2, 4)),
        7 => generators::caterpillar(a + 1),
        _ => {
            let (k, l) = (a.clamp(2, 5), b.clamp(2, 4));
            let min = (k + l - 1) as usize;
            let max = ((k * l) as usize).min(14);
            let m = min + (seed as usize) % (max - min + 1);
            generators::random_connected_bipartite(k, l, m, seed)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Memoized cost == fresh portfolio cost, at every thread count,
    /// whether the memo is cold, warming, or already hot.
    #[test]
    fn memoized_cost_equals_fresh_cost(g in family_graph(), h in family_graph()) {
        let fresh_g = portfolio_effective_cost(&g, 1).unwrap();
        let fresh_h = portfolio_effective_cost(&h, 1).unwrap();
        let memo = Memo::new();
        for threads in THREAD_COUNTS {
            prop_assert_eq!(memoized_effective_cost(&g, &memo, threads).unwrap(), fresh_g,
                "g, threads = {}", threads);
            prop_assert_eq!(memoized_effective_cost(&h, &memo, threads).unwrap(), fresh_h,
                "h, threads = {}", threads);
        }
        // a union solved through the now-hot memo is still additive
        let u = g.disjoint_union(&h);
        let s = solve_with_memo(&u, &memo, 2).unwrap();
        s.validate(&u).unwrap();
        prop_assert_eq!(s.effective_cost(&u), fresh_g + fresh_h);
        prop_assert!(s.effective_cost(&u) >= bounds::best_lower_bound(&u));
    }

    /// The memoized exact path keeps the exact answer.
    #[test]
    fn memoized_exact_stays_exact(
        g in (2u32..=4, 2u32..=4, any::<u64>()).prop_flat_map(|(k, l, seed)| {
            let min = (k + l - 1) as usize;
            let max = (k * l) as usize;
            (min..=max).prop_map(move |m| generators::random_connected_bipartite(k, l, m, seed))
        }),
    ) {
        let opt = exact::optimal_effective_cost(&g).unwrap();
        let memo = Memo::new();
        // cold (records) and hot (serves) must both agree with fresh
        prop_assert_eq!(exact::optimal_effective_cost_memo(&g, &memo).unwrap(), opt);
        prop_assert_eq!(exact::optimal_effective_cost_memo(&g, &memo).unwrap(), opt);
        let s = exact::optimal_scheme_memo(&g, &memo).unwrap();
        s.validate(&g).unwrap();
        prop_assert_eq!(s.effective_cost(&g), opt);
    }
}

/// A second pass over a shuffled repeated-shape workload is ≥90% served
/// from recognizers and cache hits — the tentpole's headline property.
#[test]
fn second_pass_is_served_from_the_cache() {
    // a workload of repeated shapes: families plus random blocks, each
    // appearing several times under different labels
    let mut shapes: Vec<BipartiteGraph> = Vec::new();
    for seed in 0..6u64 {
        shapes.push(generators::random_connected_bipartite(4, 4, 9, seed));
    }
    shapes.push(generators::spider(5));
    shapes.push(generators::complete_bipartite(3, 4));
    shapes.push(generators::cycle(5));

    let memo = Memo::new();
    let mut first_pass: Vec<usize> = Vec::new();
    for g in &shapes {
        first_pass.push(memoized_effective_cost(g, &memo, 2).unwrap());
    }
    let warm = memo.stats();

    // second pass: same shapes, shuffled order
    let mut order: Vec<usize> = (0..shapes.len()).collect();
    order.reverse();
    order.swap(0, 3);
    for &i in &order {
        assert_eq!(
            memoized_effective_cost(&shapes[i], &memo, 2).unwrap(),
            first_pass[i],
            "shape {i} changed cost on the second pass"
        );
    }
    let hot = memo.stats();

    let second_lookups =
        (hot.hits + hot.misses + hot.recognized) - (warm.hits + warm.misses + warm.recognized);
    let second_served = (hot.hits + hot.recognized) - (warm.hits + warm.recognized);
    assert!(
        second_served as f64 >= 0.9 * second_lookups as f64,
        "second pass served {second_served}/{second_lookups} from cache/recognizers; stats {hot:?}"
    );
    assert_eq!(hot.rejects, 0, "no validated hit may fail: {hot:?}");
}
