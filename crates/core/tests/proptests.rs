//! Property-based tests for the pebble game: every algorithm yields
//! valid schemes within the paper's bounds, exactness dominates
//! heuristics, and the structural lemmas hold on arbitrary graphs.

use jp_graph::{betti_number, generators, BipartiteGraph};
use jp_pebble::approx::{
    pebble_dfs_partition, pebble_equijoin, pebble_euler_trails, pebble_nearest_neighbor,
    pebble_path_cover,
};
use jp_pebble::{bounds, exact, tsp};
use proptest::prelude::*;

fn bipartite() -> impl Strategy<Value = BipartiteGraph> {
    (1u32..=5, 1u32..=5).prop_flat_map(|(k, l)| {
        proptest::collection::vec((0..k, 0..l), 0..=12)
            .prop_map(move |edges| BipartiteGraph::new(k, l, edges))
    })
}

fn connected_bipartite() -> impl Strategy<Value = BipartiteGraph> {
    (2u32..=5, 2u32..=4, any::<u64>()).prop_flat_map(|(k, l, seed)| {
        let min = (k + l - 1) as usize;
        let max = ((k * l) as usize).min(14);
        (min..=max).prop_map(move |m| generators::random_connected_bipartite(k, l, m, seed))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_pebblers_produce_valid_schemes(g in bipartite()) {
        for scheme in [
            pebble_dfs_partition(&g).unwrap(),
            pebble_euler_trails(&g).unwrap(),
            pebble_path_cover(&g).unwrap(),
            pebble_nearest_neighbor(&g).unwrap(),
        ] {
            prop_assert!(scheme.validate(&g).is_ok());
            let m = g.edge_count();
            let b0 = betti_number(&g) as usize;
            // Lemma 2.1 window
            prop_assert!(scheme.cost() >= m + b0);
            prop_assert!(scheme.effective_cost(&g) >= m);
            // jumps accounting: π̂ = m + jumps + 1 for non-empty schemes,
            // so π = m + jumps + 1 − β₀ (equals m + jumps when connected)
            if m > 0 {
                prop_assert_eq!(scheme.effective_cost(&g), m + scheme.jumps(&g) + 1 - b0);
            }
        }
    }

    #[test]
    fn exact_is_a_lower_bound_for_every_heuristic(g in connected_bipartite()) {
        let opt = exact::optimal_effective_cost(&g).unwrap();
        let m = g.edge_count();
        prop_assert!(opt >= bounds::best_lower_bound(&g));
        prop_assert!(opt <= bounds::upper_bound_effective(&g));
        for scheme in [
            pebble_dfs_partition(&g).unwrap(),
            pebble_euler_trails(&g).unwrap(),
            pebble_path_cover(&g).unwrap(),
            pebble_nearest_neighbor(&g).unwrap(),
        ] {
            prop_assert!(scheme.effective_cost(&g) >= opt);
        }
        // Theorem 3.1 algorithmic guarantee
        let dfs = pebble_dfs_partition(&g).unwrap();
        prop_assert!(dfs.effective_cost(&g) <= (5 * m).div_ceil(4));
    }

    #[test]
    fn additivity_of_exact_cost(a in connected_bipartite(), b in connected_bipartite()) {
        // Lemma 2.2 on arbitrary pairs (sizes kept small for Held–Karp)
        let u = a.disjoint_union(&b);
        let lhs = exact::optimal_effective_cost(&u).unwrap();
        let rhs =
            exact::optimal_effective_cost(&a).unwrap() + exact::optimal_effective_cost(&b).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn equijoin_pebbler_agrees_with_classifier(g in bipartite()) {
        match pebble_equijoin(&g) {
            Ok(s) => {
                prop_assert!(jp_graph::properties::is_equijoin_graph(&g));
                prop_assert_eq!(s.effective_cost(&g), g.edge_count());
            }
            Err(_) => prop_assert!(!jp_graph::properties::is_equijoin_graph(&g)),
        }
    }

    #[test]
    fn tour_scheme_cost_correspondence(g in connected_bipartite()) {
        // Proposition 2.2 constructively, on the optimal tour
        let lg = jp_graph::line_graph(&g);
        let (tour, jumps) = exact::min_jump_tour(&lg);
        let scheme = tsp::tour_to_scheme(&g, &tour).unwrap();
        prop_assert!(scheme.validate(&g).is_ok());
        let m = g.edge_count();
        prop_assert_eq!(scheme.effective_cost(&g), m + jumps);
        prop_assert_eq!(scheme.effective_cost(&g), exact::optimal_effective_cost(&g).unwrap());
        // and back (Prop 2.2's other direction): the deletion order is a
        // tour over all edges whose induced scheme is again optimal. (It
        // need not equal `tour` verbatim: a jump's intermediate config can
        // be forced onto a fresh edge, deleting it early.)
        let back = tsp::scheme_to_tour(&g, &scheme);
        let mut ids = back.clone();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..m as u32).collect::<Vec<u32>>());
        let rebuilt = tsp::tour_to_scheme(&g, &back).unwrap();
        prop_assert!(rebuilt.validate(&g).is_ok());
        prop_assert_eq!(rebuilt.effective_cost(&g), m + jumps);
    }

    #[test]
    fn perfect_iff_traceable(g in connected_bipartite()) {
        // Proposition 2.1 via independent implementations
        let perfect = exact::optimal_effective_cost(&g).unwrap() == g.edge_count();
        prop_assert_eq!(perfect, bounds::has_perfect_scheme(&g));
    }

    #[test]
    fn two_opt_never_worsens_and_stays_valid(g in connected_bipartite()) {
        let lg = jp_graph::line_graph(&g);
        let tsp12 = tsp::Tsp12::new(lg.clone());
        let mut tour = jp_pebble::approx::nearest_neighbor::nearest_neighbor_tour(&lg);
        let before = tsp12.tour_cost(&tour);
        jp_pebble::approx::improve_two_opt(&tsp12, &mut tour, 4);
        prop_assert!(tsp12.is_valid_tour(&tour));
        prop_assert!(tsp12.tour_cost(&tour) <= before);
        let scheme = tsp::tour_to_scheme(&g, &tour).unwrap();
        prop_assert!(scheme.validate(&g).is_ok());
    }

    #[test]
    fn pendant_bound_never_exceeds_optimum(g in connected_bipartite()) {
        let lb = bounds::pendant_lower_bound(&g);
        let opt = exact::optimal_effective_cost(&g).unwrap();
        prop_assert!(lb <= opt, "pendant bound {lb} exceeded optimum {opt}");
    }

    #[test]
    fn decision_matches_optimal(g in connected_bipartite(), k in 0usize..40) {
        let opt = exact::optimal_effective_cost(&g).unwrap();
        prop_assert_eq!(exact::pebble_decision(&g, k).unwrap(), opt <= k);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bb_agrees_with_held_karp(g in connected_bipartite()) {
        let hk = exact::optimal_effective_cost(&g).unwrap();
        let bb = jp_pebble::exact_bb::optimal_effective_cost_bb(&g, 20_000_000).unwrap();
        prop_assert_eq!(bb, hk);
    }

    #[test]
    fn implied_schemes_from_shuffled_traces_are_valid(g in connected_bipartite(), seed in any::<u64>()) {
        // any permutation of the edge set is a valid trace
        let mut trace: Vec<(u32, u32)> = g.edges().to_vec();
        let mut state = seed | 1;
        for i in (1..trace.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            trace.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let s = jp_pebble::analysis::implied_scheme(&g, &trace).unwrap();
        prop_assert!(s.validate(&g).is_ok());
        let m = g.edge_count();
        prop_assert!(s.cost() > m);
        prop_assert!(s.cost() <= 2 * m);
    }

    #[test]
    fn fragment_mappings_cost_equals_quotient_edges(
        g in bipartite(),
        p in 1u32..4,
        q in 1u32..4,
        seed in any::<u64>(),
    ) {
        // a pseudo-random capacity-free assignment
        let lf: Vec<u32> = (0..g.left_count() as u64)
            .map(|i| ((i ^ seed).wrapping_mul(0x9e3779b97f4a7c15) >> 33) as u32 % p)
            .collect();
        let rf: Vec<u32> = (0..g.right_count() as u64)
            .map(|i| ((i ^ seed).wrapping_mul(0xd1b54a32d192ed03) >> 33) as u32 % q)
            .collect();
        let m = jp_pebble::fragmentation::FragmentMapping {
            left: lf.clone(),
            right: rf.clone(),
            p,
            q,
        };
        let quot = jp_graph::quotient(&g, &lf, p, &rf, q);
        prop_assert_eq!(m.cost(&g), quot.edge_count());
    }

    #[test]
    fn component_pack_respects_capacity_and_lower_bound(g in bipartite()) {
        use jp_pebble::fragmentation::{balanced_capacity, component_pack, connected_lower_bound};
        let (p, q) = (2u32, 2u32);
        let cap_l = balanced_capacity(g.left_count() as usize, p) + 1;
        let cap_r = balanced_capacity(g.right_count() as usize, q) + 1;
        let m = component_pack(&g, p, q, cap_l, cap_r);
        prop_assert!(m.validate(&g, cap_l, cap_r).is_ok());
        if g.edge_count() > 0 {
            prop_assert!(m.cost(&g) >= 1);
        }
        prop_assert!(m.cost(&g) >= connected_lower_bound(&g, cap_l, cap_r).min(m.cost(&g)));
    }

    #[test]
    fn page_graph_pebbles_within_bounds(g in connected_bipartite(), cap in 1usize..4) {
        use jp_pebble::paging::{page_fetches, schedule_page_fetches, PageLayout};
        let layout = PageLayout::sequential(
            g.left_count() as usize,
            g.right_count() as usize,
            cap,
        ).unwrap();
        let (pg, scheme) = schedule_page_fetches(&g, &layout).unwrap();
        prop_assert!(scheme.validate(&pg).is_ok());
        let mpg = pg.edge_count();
        prop_assert!(page_fetches(&scheme) > mpg);
        prop_assert!(page_fetches(&scheme) <= 2 * mpg);
        // quotient never has more edges than the original
        prop_assert!(mpg <= g.edge_count());
    }

    #[test]
    fn or_opt_preserves_validity_through_schemes(g in connected_bipartite()) {
        use jp_pebble::approx::{improve_or_opt, nearest_neighbor::nearest_neighbor_tour};
        let lg = jp_graph::line_graph(&g);
        let tsp12 = tsp::Tsp12::new(lg.clone());
        let mut tour = nearest_neighbor_tour(&lg);
        improve_or_opt(&tsp12, &mut tour, 4);
        let s = tsp::tour_to_scheme(&g, &tour).unwrap();
        prop_assert!(s.validate(&g).is_ok());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn matching_cover_respects_its_jump_bound(g in connected_bipartite()) {
        use jp_pebble::approx::pebble_matching_cover;
        let s = pebble_matching_cover(&g).unwrap();
        prop_assert!(s.validate(&g).is_ok());
        let lg = jp_graph::line_graph(&g);
        let nu = jp_graph::matching::maximum_matching(&lg).len();
        prop_assert!(s.jumps(&g) <= g.edge_count() - 1 - nu);
        prop_assert!(s.effective_cost(&g) >= exact::optimal_effective_cost(&g).unwrap());
    }

    #[test]
    fn compress_is_sound_and_monotone(g in connected_bipartite(), reps in 1usize..3) {
        // wasteful scheme: the edge list repeated
        let mut order: Vec<usize> = Vec::new();
        for _ in 0..reps {
            order.extend(0..g.edge_count());
        }
        let s = jp_pebble::PebblingScheme::from_edge_sequence(&g, &order).unwrap();
        let c = s.compress(&g);
        prop_assert!(c.validate(&g).is_ok());
        prop_assert!(c.cost() <= s.cost());
        prop_assert!(c.effective_cost(&g) >= g.edge_count());
        prop_assert_eq!(c.compress(&g), c.clone());
    }

    #[test]
    fn buffer_schedules_scale_down_with_capacity(g in connected_bipartite()) {
        use jp_pebble::buffers::{lower_bound, schedule_greedy};
        let mut prev = usize::MAX;
        for b in [2usize, 3, 6] {
            let s = schedule_greedy(&g, b).unwrap();
            prop_assert!(s.validate(&g, b).is_ok());
            prop_assert!(s.cost() >= lower_bound(&g));
            prop_assert!(s.cost() <= prev);
            prev = s.cost();
        }
        // B = 2 is the pebble game: cost within Lemma 2.1's window
        let two = schedule_greedy(&g, 2).unwrap();
        prop_assert!(two.cost() <= 2 * g.edge_count());
    }

    #[test]
    fn page_layouts_quotient_consistently(g in connected_bipartite(), cap in 1usize..4, seed in any::<u64>()) {
        use jp_pebble::paging::PageLayout;
        let nl = g.left_count() as usize;
        let nr = g.right_count() as usize;
        for layout in [
            PageLayout::sequential(nl, nr, cap).unwrap(),
            PageLayout::scattered(nl, nr, cap, seed).unwrap(),
        ] {
            prop_assert!(layout.validate(&g, cap).is_ok());
            let pg = layout.page_graph(&g);
            prop_assert!(pg.edge_count() <= g.edge_count());
            // every original edge lands on a page edge
            for &(l, r) in g.edges() {
                prop_assert!(pg.has_edge(
                    layout.left_page[l as usize],
                    layout.right_page[r as usize]
                ));
            }
        }
    }
}
