//! Property tests for the observability layer as driven by the solver
//! ladder: event sequences are distinct with well-formed parent links,
//! and per-component counters sum consistently with what the schemes
//! themselves report.
//!
//! Kept in a dedicated test binary: the process-wide sink would record
//! events from *any* concurrently running test in a shared binary, so
//! this file must stay the only one here installing a [`ScopedSink`].

use jp_graph::{betti_number, generators, BipartiteGraph};
use jp_obs::{EventKind, FanoutSink, MemorySink, ScopedSink, StatsSink};
use jp_pebble::approx::{pebble_euler_trails, pebble_nearest_neighbor, pebble_path_cover};
use proptest::prelude::*;
use std::sync::Arc;

fn connected_bipartite() -> impl Strategy<Value = BipartiteGraph> {
    (2u32..=5, 2u32..=4, any::<u64>()).prop_flat_map(|(k, l, seed)| {
        let min = (k + l - 1) as usize;
        let max = ((k * l) as usize).min(14);
        (min..=max).prop_map(move |m| generators::random_connected_bipartite(k, l, m, seed))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn counters_are_monotone_and_sum_consistently(g in connected_bipartite()) {
        let memory = Arc::new(MemorySink::new());
        let stats = Arc::new(StatsSink::new());
        let schemes = {
            let _guard = ScopedSink::install(Arc::new(FanoutSink::new(vec![
                memory.clone() as Arc<dyn jp_obs::Sink>,
                stats.clone() as Arc<dyn jp_obs::Sink>,
            ])));
            [
                ("approx.path_cover", pebble_path_cover(&g).unwrap()),
                ("approx.euler_trails", pebble_euler_trails(&g).unwrap()),
                ("approx.nn", pebble_nearest_neighbor(&g).unwrap()),
            ]
        };
        let events = memory.events();
        let snapshot = stats.snapshot();

        // Sequence numbers are distinct (a span reserves its seq when it
        // opens, then emits at close — so emission order is not seq
        // order), every parent link points at an *earlier* seq, and every
        // parent resolves to a span present in the trace: no orphans.
        let mut seqs = std::collections::BTreeSet::new();
        for ev in &events {
            prop_assert!(seqs.insert(ev.seq), "seq {} repeated", ev.seq);
        }
        let span_seqs: std::collections::BTreeSet<u64> = events
            .iter()
            .filter(|e| e.kind == EventKind::Span)
            .map(|e| e.seq)
            .collect();
        for ev in &events {
            if let Some(p) = ev.parent {
                prop_assert!(p < ev.seq, "parent {} not before child {}", p, ev.seq);
                prop_assert!(span_seqs.contains(&p), "orphaned parent seq {}", p);
            }
        }

        // The aggregate view must equal a manual fold of the raw events:
        // counter totals per component.name key, span counts likewise.
        let mut counters = std::collections::BTreeMap::new();
        let mut span_counts = std::collections::BTreeMap::new();
        for ev in &events {
            let key = format!("{}.{}", ev.component, ev.name);
            match ev.kind {
                EventKind::Counter => *counters.entry(key).or_insert(0u64) += ev.value,
                EventKind::Span => *span_counts.entry(key).or_insert(0u64) += 1,
            }
        }
        prop_assert_eq!(&counters, &snapshot.counters);
        prop_assert_eq!(&span_counts, &snapshot.span_counts);

        // Every solver's counters agree with the graph and its scheme:
        // `components` and `edges` describe the instance, and `jumps` is
        // exactly what the scheme reports — instrumentation never drifts
        // from ground truth.
        let b0 = u64::from(betti_number(&g));
        let m = g.edge_count() as u64;
        for (component, scheme) in &schemes {
            prop_assert!(scheme.validate(&g).is_ok());
            prop_assert_eq!(counters[&format!("{component}.components")], b0);
            prop_assert_eq!(counters[&format!("{component}.edges")], m);
            prop_assert_eq!(span_counts[&format!("{component}.pebble")], 1);
            if *component != "approx.euler_trails" {
                prop_assert_eq!(
                    counters[&format!("{component}.jumps")],
                    scheme.jumps(&g) as u64
                );
            }
        }

        // After the scope drops, emission is off again.
        prop_assert!(!jp_obs::enabled());
        let before = memory.events().len();
        jp_obs::counter("approx.path_cover", "jumps", 999);
        prop_assert_eq!(memory.events().len(), before);
    }
}
