//! Property tests for the parallel solver paths: the portfolio racer and
//! the parallel branch and bound must return costs identical to their
//! sequential counterparts at every thread count. Determinism across
//! thread counts is the contract that makes `--threads` a pure
//! performance knob — these properties are the enforcement.

use jp_graph::{generators, BipartiteGraph};
use jp_pebble::approx::{
    pebble_dfs_partition, pebble_equijoin, pebble_euler_trails, pebble_matching_cover,
    pebble_nearest_neighbor, pebble_path_cover,
};
use jp_pebble::exact_bb::optimal_effective_cost_bb_par;
use jp_pebble::portfolio::portfolio_effective_cost;
use jp_pebble::{bounds, exact};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const BB_BUDGET: u64 = 5_000_000;

fn bipartite() -> impl Strategy<Value = BipartiteGraph> {
    (1u32..=5, 1u32..=5).prop_flat_map(|(k, l)| {
        proptest::collection::vec((0..k, 0..l), 0..=12)
            .prop_map(move |edges| BipartiteGraph::new(k, l, edges))
    })
}

fn connected_bipartite() -> impl Strategy<Value = BipartiteGraph> {
    (2u32..=5, 2u32..=4, any::<u64>()).prop_flat_map(|(k, l, seed)| {
        let min = (k + l - 1) as usize;
        let max = ((k * l) as usize).min(14);
        (min..=max).prop_map(move |m| generators::random_connected_bipartite(k, l, m, seed))
    })
}

/// Minimum over the sequential heuristic ladder — what the portfolio is
/// racing against (the exact strategy can only lower it further).
fn sequential_ladder_min(g: &BipartiteGraph) -> usize {
    let mut best = usize::MAX;
    for scheme in [
        pebble_matching_cover(g),
        pebble_dfs_partition(g),
        pebble_euler_trails(g),
        pebble_path_cover(g),
        pebble_nearest_neighbor(g),
        pebble_equijoin(g),
    ]
    .into_iter()
    .flatten()
    {
        best = best.min(scheme.effective_cost(g));
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn portfolio_cost_is_thread_count_invariant_and_sound(g in bipartite()) {
        let base = portfolio_effective_cost(&g, 1).unwrap();
        for threads in THREAD_COUNTS {
            prop_assert_eq!(portfolio_effective_cost(&g, threads).unwrap(), base,
                "threads = {}", threads);
        }
        // the race can only improve on the sequential ladder minimum…
        prop_assert!(base <= sequential_ladder_min(&g));
        // …and never dips below the certified floor
        prop_assert!(base >= bounds::best_lower_bound(&g));
    }

    #[test]
    fn portfolio_matches_exact_on_connected_instances(g in connected_bipartite()) {
        // DP-sized components: the exact strategy completes, so the
        // portfolio answer is the optimum at every thread count
        let opt = exact::optimal_effective_cost(&g).unwrap();
        for threads in THREAD_COUNTS {
            prop_assert_eq!(portfolio_effective_cost(&g, threads).unwrap(), opt,
                "threads = {}", threads);
        }
    }

    #[test]
    fn parallel_bb_cost_matches_sequential(g in bipartite()) {
        let seq = optimal_effective_cost_bb_par(&g, BB_BUDGET, 1).unwrap();
        for threads in THREAD_COUNTS {
            prop_assert_eq!(
                optimal_effective_cost_bb_par(&g, BB_BUDGET, threads).unwrap(), seq,
                "threads = {}", threads);
        }
    }

    #[test]
    fn parallel_bb_matches_held_karp(g in connected_bipartite()) {
        let hk = exact::optimal_effective_cost(&g).unwrap();
        for threads in THREAD_COUNTS {
            prop_assert_eq!(optimal_effective_cost_bb_par(&g, BB_BUDGET, threads).unwrap(), hk,
                "threads = {}", threads);
        }
    }
}
