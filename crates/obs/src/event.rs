//! The unit of observation.
//!
//! # Event schema reference (versioned)
//!
//! Every trace line is one flat JSON object. The wire schema is
//! versioned through the `v` field; this build writes
//! [`SCHEMA_VERSION`] and reads every version up to it.
//!
//! ## Version 2 (current)
//!
//! Keys are always serialized in this order, and `parent` is omitted
//! entirely when absent — making well-formed traces byte-stable under
//! an `emit → parse → re-emit` round trip:
//!
//! | key         | type   | meaning |
//! |-------------|--------|---------|
//! | `v`         | u64    | schema version of the line (`2`) |
//! | `seq`       | u64    | process-wide monotone sequence number; spans *reserve* theirs when opened, so a parent's `seq` is always smaller than any child's |
//! | `thread`    | u64    | process-local id of the emitting thread (handed out in first-emission order, never `0`) |
//! | `kind`      | string | `"Counter"` or `"Span"` |
//! | `component` | string | which solver produced it, e.g. `"exact"`, `"bb"`, `"portfolio"` |
//! | `name`      | string | which signal, e.g. `"dp_states"`, `"solve"` |
//! | `value`     | u64    | count (counters) or elapsed microseconds (spans) |
//! | `start`     | u64    | monotonic offset in microseconds since the sink was installed: span-open time for spans, emission time for counters |
//! | `parent`    | u64?   | `seq` of the enclosing span (on this thread, or linked across threads via [`crate::link_parent`]); omitted at top level |
//! | `request`   | u64?   | id of the serve request this event belongs to (installed via [`crate::with_request`]); omitted outside a request |
//!
//! `request` is an *additive* field within version 2: traces written
//! before it existed contain no `request` keys and still round-trip
//! byte-identically, and readers that predate it ignore the extra key
//! (field-lookup deserialization skips unknown map entries).
//!
//! ## Version 1
//!
//! The original schema: `seq`, `thread`, `kind`, `component`, `name`,
//! `value` only, with no `v` tag, and `seq` assigned at *emission* (so a
//! span's `seq` was larger than its children's). Version-1 lines still
//! parse: a missing `v` means `1`, `start` defaults to `0` and `parent`
//! to absent.
//!
//! Lines with `v` greater than [`SCHEMA_VERSION`] are rejected by
//! [`Deserialize`], so readers can distinguish "future schema" from
//! "corrupt line" and skip with an accurate reason.

use serde::{Content, DeError, Deserialize, Serialize};

/// The wire-schema version this build emits. See the module docs for the
/// per-version field reference.
pub const SCHEMA_VERSION: u64 = 2;

/// What an [`Event`]'s `value` means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// `value` is a count of discrete work items.
    Counter,
    /// `value` is an elapsed duration in microseconds.
    Span,
}

/// One observation emitted by an instrumented solver.
///
/// Serializes to a single flat JSON object — one line of a JSONL trace.
/// See the [module docs](self) for the versioned wire-schema reference.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Process-wide monotone sequence number. Counters get theirs at
    /// emission; spans *reserve* theirs when the guard is created, so
    /// parents always order before their children even though the span
    /// event itself is written on drop.
    pub seq: u64,
    /// Process-local id of the emitting thread (assigned at emission).
    ///
    /// Ids are small integers handed out in thread-creation order, so
    /// traces from parallel runs stay attributable: every event from one
    /// worker carries the same `thread`. The default (`0` in builders) is
    /// replaced at emission; `0` never appears in a recorded event.
    pub thread: u64,
    /// Counter or span.
    pub kind: EventKind,
    /// Which solver produced it, e.g. `"exact"`, `"bb"`, `"approx.dfs"`.
    pub component: String,
    /// Which signal, e.g. `"nodes_expanded"`, `"solve"`.
    pub name: String,
    /// Count (for counters) or elapsed microseconds (for spans).
    pub value: u64,
    /// Monotonic offset in microseconds since the sink was installed:
    /// the moment the span was *opened* (spans) or the moment of
    /// emission (counters). `0` in version-1 traces.
    pub start: u64,
    /// `seq` of the enclosing span, if any. Maintained per thread by the
    /// span stack; worker threads inherit a cross-thread parent through
    /// [`crate::link_parent`]. `None` for top-level events and in
    /// version-1 traces.
    pub parent: Option<u64>,
    /// Id of the serve request this event was emitted on behalf of, if
    /// any. Installed per thread via [`crate::with_request`] and stamped
    /// at emission, so every span or counter a request causes — on any
    /// worker thread — is linkable back to that request. `None` outside
    /// a request and in traces written before the field existed.
    pub request: Option<u64>,
}

impl Event {
    /// Builds a counter event (the global emitter fills in `seq`,
    /// `thread`, `start` and `parent`).
    pub fn counter(component: &str, name: &str, value: u64) -> Self {
        Event {
            seq: 0,
            thread: 0,
            kind: EventKind::Counter,
            component: component.to_string(),
            name: name.to_string(),
            value,
            start: 0,
            parent: None,
            request: None,
        }
    }

    /// Builds a span event with an elapsed time in microseconds.
    pub fn span(component: &str, name: &str, micros: u64) -> Self {
        Event {
            seq: 0,
            thread: 0,
            kind: EventKind::Span,
            component: component.to_string(),
            name: name.to_string(),
            value: micros,
            start: 0,
            parent: None,
            request: None,
        }
    }
}

// Hand-written (rather than derived) so that `parent: None` is *omitted*
// from the serialized map instead of rendered as `null`, and so the key
// order is pinned as documented — both needed for the byte-identical
// re-emit guarantee the trace tooling tests.
impl Serialize for Event {
    fn to_content(&self) -> Content {
        let mut map = vec![
            ("v".to_string(), Content::U64(SCHEMA_VERSION)),
            ("seq".to_string(), Content::U64(self.seq)),
            ("thread".to_string(), Content::U64(self.thread)),
            ("kind".to_string(), self.kind.to_content()),
            (
                "component".to_string(),
                Content::Str(self.component.clone()),
            ),
            ("name".to_string(), Content::Str(self.name.clone())),
            ("value".to_string(), Content::U64(self.value)),
            ("start".to_string(), Content::U64(self.start)),
        ];
        if let Some(p) = self.parent {
            map.push(("parent".to_string(), Content::U64(p)));
        }
        if let Some(r) = self.request {
            map.push(("request".to_string(), Content::U64(r)));
        }
        Content::Map(map)
    }
}

impl Deserialize for Event {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let map = content
            .as_map()
            .ok_or_else(|| DeError::expected("object for `Event`", content))?;
        // Missing `v` is a version-1 line; anything newer than this
        // build's writer is refused so the caller can report "future
        // schema" instead of mis-reading fields it doesn't know about.
        let v = serde::field::<Option<u64>>(map, "Event", "v")?.unwrap_or(1);
        if v > SCHEMA_VERSION {
            return Err(DeError::custom(format!(
                "unsupported event schema version {v} (this build reads up to {SCHEMA_VERSION})"
            )));
        }
        Ok(Event {
            seq: serde::field(map, "Event", "seq")?,
            thread: serde::field(map, "Event", "thread")?,
            kind: serde::field(map, "Event", "kind")?,
            component: serde::field(map, "Event", "component")?,
            name: serde::field(map, "Event", "name")?,
            value: serde::field(map, "Event", "value")?,
            start: serde::field::<Option<u64>>(map, "Event", "start")?.unwrap_or(0),
            parent: serde::field(map, "Event", "parent")?,
            request: serde::field(map, "Event", "request")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_json() {
        let e = Event {
            seq: 42,
            thread: 7,
            kind: EventKind::Span,
            component: "bb".into(),
            name: "search".into(),
            value: 1250,
            start: 17,
            parent: Some(40),
            request: None,
        };
        let line = serde_json::to_string(&e).unwrap();
        assert!(line.contains("\"kind\":\"Span\""), "line = {line}");
        assert!(line.contains("\"v\":2"), "line = {line}");
        assert!(line.contains("\"parent\":40"), "line = {line}");
        let back: Event = serde_json::from_str(&line).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn parent_is_omitted_when_absent() {
        let e = Event::counter("exact", "dp_states", 9);
        let line = serde_json::to_string(&e).unwrap();
        assert!(!line.contains("parent"), "line = {line}");
        let back: Event = serde_json::from_str(&line).unwrap();
        assert_eq!(back.parent, None);
    }

    #[test]
    fn version_1_lines_still_parse() {
        let line = r#"{"seq":3,"thread":1,"kind":"Counter","component":"bb","name":"nodes_expanded","value":12}"#;
        let e: Event = serde_json::from_str(line).unwrap();
        assert_eq!(e.seq, 3);
        assert_eq!(e.value, 12);
        assert_eq!(e.start, 0);
        assert_eq!(e.parent, None);
    }

    #[test]
    fn future_schema_versions_are_refused() {
        let line = r#"{"v":99,"seq":1,"thread":1,"kind":"Counter","component":"a","name":"b","value":1,"start":0}"#;
        let err = serde_json::from_str::<Event>(line).unwrap_err();
        assert!(err.to_string().contains("schema version 99"), "err = {err}");
    }

    #[test]
    fn reemission_is_byte_identical() {
        let line = r#"{"v":2,"seq":5,"thread":2,"kind":"Span","component":"portfolio","name":"race","value":800,"start":4,"parent":1}"#;
        let e: Event = serde_json::from_str(line).unwrap();
        assert_eq!(serde_json::to_string(&e).unwrap(), line);
    }

    #[test]
    fn request_is_omitted_when_absent_and_round_trips_when_present() {
        let mut e = Event::counter("serve", "queue_wait_us", 41);
        let bare = serde_json::to_string(&e).unwrap();
        assert!(!bare.contains("request"), "line = {bare}");
        e.request = Some(9001);
        let stamped = serde_json::to_string(&e).unwrap();
        assert!(stamped.contains("\"request\":9001"), "line = {stamped}");
        let back: Event = serde_json::from_str(&stamped).unwrap();
        assert_eq!(back, e);
        assert_eq!(serde_json::to_string(&back).unwrap(), stamped);
    }

    #[test]
    fn stamped_reemission_is_byte_identical() {
        let line = r#"{"v":2,"seq":5,"thread":2,"kind":"Span","component":"serve","name":"request","value":800,"start":4,"parent":1,"request":77}"#;
        let e: Event = serde_json::from_str(line).unwrap();
        assert_eq!(e.request, Some(77));
        assert_eq!(serde_json::to_string(&e).unwrap(), line);
    }

    #[test]
    fn readers_ignore_unknown_keys_like_pre_request_builds_did() {
        // The mechanism by which builds that predate the `request` field
        // read stamped traces: field-lookup deserialization skips map
        // keys it does not know. A line with an extra, never-declared
        // key parses the same way — no hard error, field ignored.
        let line = r#"{"v":2,"seq":5,"thread":2,"kind":"Counter","component":"serve","name":"ok","value":1,"start":4,"request":77,"zzz_future_key":1}"#;
        let e: Event = serde_json::from_str(line).unwrap();
        assert_eq!(e.value, 1);
        assert_eq!(e.request, Some(77));
    }
}
