//! The unit of observation.

use serde::{Deserialize, Serialize};

/// What an [`Event`]'s `value` means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// `value` is a count of discrete work items.
    Counter,
    /// `value` is an elapsed duration in microseconds.
    Span,
}

/// One observation emitted by an instrumented solver.
///
/// Serializes to a single flat JSON object — one line of a JSONL trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Process-wide monotone sequence number (assigned at emission).
    pub seq: u64,
    /// Process-local id of the emitting thread (assigned at emission).
    ///
    /// Ids are small integers handed out in thread-creation order, so
    /// traces from parallel runs stay attributable: every event from one
    /// worker carries the same `thread`. The default (`0` in builders) is
    /// replaced at emission; `0` never appears in a recorded event.
    pub thread: u64,
    /// Counter or span.
    pub kind: EventKind,
    /// Which solver produced it, e.g. `"exact"`, `"bb"`, `"approx.dfs"`.
    pub component: String,
    /// Which signal, e.g. `"nodes_expanded"`, `"solve"`.
    pub name: String,
    /// Count (for counters) or elapsed microseconds (for spans).
    pub value: u64,
}

impl Event {
    /// Builds a counter event (the global emitter fills in `seq`).
    pub fn counter(component: &str, name: &str, value: u64) -> Self {
        Event {
            seq: 0,
            thread: 0,
            kind: EventKind::Counter,
            component: component.to_string(),
            name: name.to_string(),
            value,
        }
    }

    /// Builds a span event with an elapsed time in microseconds.
    pub fn span(component: &str, name: &str, micros: u64) -> Self {
        Event {
            seq: 0,
            thread: 0,
            kind: EventKind::Span,
            component: component.to_string(),
            name: name.to_string(),
            value: micros,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_json() {
        let e = Event {
            seq: 42,
            thread: 7,
            kind: EventKind::Span,
            component: "bb".into(),
            name: "search".into(),
            value: 1250,
        };
        let line = serde_json::to_string(&e).unwrap();
        assert!(line.contains("\"kind\":\"Span\""), "line = {line}");
        let back: Event = serde_json::from_str(&line).unwrap();
        assert_eq!(back, e);
    }
}
