//! The process-wide sink and the emission API.

use crate::event::Event;
use crate::sink::Sink;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::Instant;

/// Fast-path gate: a single relaxed load decides whether any event is
/// constructed at all.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed sink, if any.
static SINK: RwLock<Option<Arc<dyn Sink>>> = RwLock::new(None);

/// Process-wide monotone event sequence.
static SEQ: AtomicU64 = AtomicU64::new(0);

/// Serializes [`ScopedSink`] holders so concurrent tests don't fight
/// over the process-wide sink.
static SCOPE: Mutex<()> = Mutex::new(());

/// Whether a sink is installed. Inlined to one relaxed atomic load so
/// instrumented hot paths cost nothing measurable when observability is
/// off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `sink` as the process-wide event destination.
pub fn set_sink(sink: Arc<dyn Sink>) {
    let mut slot = SINK.write().unwrap_or_else(|e| e.into_inner());
    *slot = Some(sink);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Removes the process-wide sink (flushing it first) and disables
/// emission.
pub fn clear_sink() {
    let mut slot = SINK.write().unwrap_or_else(|e| e.into_inner());
    ENABLED.store(false, Ordering::Relaxed);
    if let Some(sink) = slot.take() {
        sink.flush();
    }
}

fn emit(mut event: Event) {
    let slot = SINK.read().unwrap_or_else(|e| e.into_inner());
    if let Some(sink) = slot.as_ref() {
        event.seq = SEQ.fetch_add(1, Ordering::Relaxed);
        sink.record(&event);
    }
}

/// Emits a counter event (no-op with no sink installed).
#[inline]
pub fn counter(component: &str, name: &str, value: u64) {
    if enabled() {
        emit(Event::counter(component, name, value));
    }
}

/// Starts an RAII span timer; the event is emitted on drop.
///
/// With no sink installed the guard is inert: the clock is never read.
#[inline]
pub fn span(component: &'static str, name: &'static str) -> SpanGuard {
    SpanGuard {
        start: enabled().then(Instant::now),
        component,
        name,
    }
}

/// Emits a span event with the elapsed time when dropped. See [`span`].
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard {
    start: Option<Instant>,
    component: &'static str,
    name: &'static str,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            // Re-check: the sink may have been cleared mid-span.
            if enabled() {
                let micros = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
                emit(Event::span(self.component, self.name, micros));
            }
        }
    }
}

/// Installs a sink for the lifetime of the guard, restoring the previous
/// state on drop.
///
/// Holders are serialized through a global lock, so concurrently running
/// tests that each install a [`ScopedSink`] observe only their own
/// events. (Solver threads *within* one scope still share the sink —
/// that's the point.)
pub struct ScopedSink {
    _scope: MutexGuard<'static, ()>,
}

impl ScopedSink {
    /// Installs `sink`, blocking until any other scope has dropped.
    pub fn install(sink: Arc<dyn Sink>) -> Self {
        let scope = SCOPE.lock().unwrap_or_else(|e| e.into_inner());
        set_sink(sink);
        ScopedSink { _scope: scope }
    }
}

impl Drop for ScopedSink {
    fn drop(&mut self) {
        clear_sink();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;
    use crate::EventKind;

    #[test]
    fn disabled_by_default_and_scoped_install_restores() {
        {
            let sink = Arc::new(MemorySink::new());
            let _guard = ScopedSink::install(sink.clone());
            assert!(enabled());
            counter("t", "a", 1);
            {
                let _span = span("t", "s");
            }
            let events = sink.events();
            assert_eq!(events.len(), 2);
            assert_eq!(events[0].kind, EventKind::Counter);
            assert_eq!(events[1].kind, EventKind::Span);
            // Sequence numbers are strictly increasing.
            assert!(events[0].seq < events[1].seq);
        }
        // Counter after the scope must go nowhere (and not panic).
        counter("t", "b", 1);
    }
}
