//! The process-wide sink and the emission API.

use crate::event::Event;
use crate::sink::Sink;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::Instant;

/// Fast-path gate: a single relaxed load decides whether any event is
/// constructed at all.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed sink, if any.
static SINK: RwLock<Option<Arc<dyn Sink>>> = RwLock::new(None);

/// Secondary, process-wide event taps. Unlike [`SINK`] (which scoped
/// captures swap in and out), a tap sees every dispatched event for as
/// long as it is installed — it is how jp-serve's tail sampler buffers
/// per-request spans without disturbing whatever trace capture the CLI
/// set up. Taps stack: each [`set_tap`] adds one and removes exactly
/// that one on guard drop, so a server's tail sampler and an
/// `jp explain` counter capture can coexist in one process without
/// clobbering each other.
static TAP: RwLock<Vec<(u64, Arc<dyn Sink>)>> = RwLock::new(Vec::new());

/// Hands each installed tap a token so [`TapGuard::drop`] removes its
/// own entry even when guards are dropped out of install order.
static NEXT_TAP_TOKEN: AtomicU64 = AtomicU64::new(1);

/// Process-wide monotone event sequence.
static SEQ: AtomicU64 = AtomicU64::new(0);

/// The instant the current sink was installed; `start` offsets in
/// emitted events are measured from here. `None` while no sink is up.
static EPOCH: Mutex<Option<Instant>> = Mutex::new(None);

/// Serializes [`ScopedSink`] holders so concurrent tests don't fight
/// over the process-wide sink.
static SCOPE: Mutex<()> = Mutex::new(());

/// While a [`ScopedSink`] is active: the thread ids allowed to emit into
/// it (the installer plus every [`adopt`]ed worker). `None` = no scope
/// active, no filtering — a plain [`set_sink`] observes every thread.
static SCOPE_MEMBERS: Mutex<Option<BTreeSet<u64>>> = Mutex::new(None);

/// Source of process-local thread ids (first thread gets 1, so the `0`
/// placeholder in [`Event`] builders never collides with a real id).
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);

    /// The stack of open span `seq`s on this thread (innermost last).
    /// [`link_parent`] pushes a foreign span's seq so work handed to a
    /// worker thread still nests under the span that spawned it.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };

    /// The serve-request id everything this thread emits is stamped
    /// with, if any. Installed via [`with_request`] when a dispatcher
    /// hands a request's job to a worker.
    static CURRENT_REQUEST: std::cell::Cell<Option<u64>> = const { std::cell::Cell::new(None) };
}

/// This thread's process-local id, as stamped into [`Event::thread`].
///
/// Ids are handed out in first-emission order and never reused; they are
/// unrelated to the OS thread id.
pub fn thread_id() -> u64 {
    THREAD_ID.with(|t| *t)
}

/// Whether a sink is installed. Inlined to one relaxed atomic load so
/// instrumented hot paths cost nothing measurable when observability is
/// off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `sink` as the process-wide event destination and resets the
/// `start`-offset epoch to now.
pub fn set_sink(sink: Arc<dyn Sink>) {
    let mut slot = SINK.write().unwrap_or_else(|e| e.into_inner());
    *slot = Some(sink);
    {
        let mut epoch = EPOCH.lock().unwrap_or_else(|e| e.into_inner());
        *epoch = Some(Instant::now());
    }
    ENABLED.store(true, Ordering::Relaxed);
}

/// Removes the process-wide sink (flushing it first). Emission stays
/// enabled if a [`set_tap`] tap is still installed.
pub fn clear_sink() {
    // Take the sink and release its lock before touching the tap slot:
    // never holding both avoids a lock-order cycle with `TapGuard::drop`.
    let taken = {
        let mut slot = SINK.write().unwrap_or_else(|e| e.into_inner());
        slot.take()
    };
    let tap_up = !TAP.read().unwrap_or_else(|e| e.into_inner()).is_empty();
    ENABLED.store(tap_up, Ordering::Relaxed);
    if !tap_up {
        let mut epoch = EPOCH.lock().unwrap_or_else(|e| e.into_inner());
        *epoch = None;
    }
    if let Some(sink) = taken {
        sink.flush();
    }
}

/// Installs `tap` as a secondary event destination for the guard's
/// lifetime. Every event [`dispatch`]ed while the guard lives — whether
/// or not a primary sink is installed — is also delivered to the tap;
/// scoped-capture thread filtering applies to sink and taps alike.
/// jp-serve's tail sampler rides this so it can buffer per-request
/// spans while the CLI's `--trace` capture (if any) keeps writing the
/// full stream; taps stack, so `jp explain`'s counter capture can run
/// while a server's sampler is live.
#[must_use = "the tap is removed when the guard drops"]
pub fn set_tap(tap: Arc<dyn Sink>) -> TapGuard {
    // race:order(token uniqueness only — no ordering dependency)
    let token = NEXT_TAP_TOKEN.fetch_add(1, Ordering::Relaxed);
    {
        let mut taps = TAP.write().unwrap_or_else(|e| e.into_inner());
        taps.push((token, tap));
    }
    {
        let mut epoch = EPOCH.lock().unwrap_or_else(|e| e.into_inner());
        epoch.get_or_insert_with(Instant::now);
    }
    ENABLED.store(true, Ordering::Relaxed);
    TapGuard { token }
}

/// Removes its own tap entry on drop (flushing it first); see
/// [`set_tap`]. Other installed taps are untouched.
pub struct TapGuard {
    token: u64,
}

impl Drop for TapGuard {
    fn drop(&mut self) {
        // Mirror of `clear_sink`: take under one lock, then inspect the
        // other — the two slots are never locked simultaneously.
        let (taken, taps_left) = {
            let mut taps = TAP.write().unwrap_or_else(|e| e.into_inner());
            let taken = taps
                .iter()
                .position(|(t, _)| *t == self.token)
                .map(|i| taps.remove(i).1);
            (taken, !taps.is_empty())
        };
        let sink_up = SINK.read().unwrap_or_else(|e| e.into_inner()).is_some();
        ENABLED.store(sink_up || taps_left, Ordering::Relaxed);
        if !sink_up && !taps_left {
            let mut epoch = EPOCH.lock().unwrap_or_else(|e| e.into_inner());
            *epoch = None;
        }
        if let Some(tap) = taken {
            tap.flush();
        }
    }
}

/// Microseconds since the current sink was installed (0 with no sink).
fn epoch_micros() -> u64 {
    let epoch = EPOCH.lock().unwrap_or_else(|e| e.into_inner());
    match *epoch {
        Some(t0) => t0.elapsed().as_micros().min(u64::MAX as u128) as u64,
        None => 0,
    }
}

/// The `seq` of the innermost span currently open on this thread (or
/// linked in via [`link_parent`]). This is what newly emitted events
/// record as their `parent`.
pub fn current_span() -> Option<u64> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

/// Delivers a fully stamped event to the sink, honoring scope filtering.
/// `event.thread` must already be set.
fn dispatch(event: Event) {
    {
        let members = SCOPE_MEMBERS.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(set) = members.as_ref() {
            if !set.contains(&event.thread) {
                // A scoped capture is active and this thread is not part
                // of it: the event belongs to someone else's scope (or to
                // no scope at all) and must not cross-talk into the
                // capture. Its reserved seq is simply never written —
                // the resulting gap is reported (not mistaken for data
                // loss) by `trace summary`.
                return;
            }
        }
    }
    {
        let slot = SINK.read().unwrap_or_else(|e| e.into_inner());
        if let Some(sink) = slot.as_ref() {
            sink.record(&event);
        }
    }
    let taps = TAP.read().unwrap_or_else(|e| e.into_inner());
    for (_, tap) in taps.iter() {
        tap.record(&event);
    }
}

/// Registers the current thread as a member of the active scoped capture
/// (if any) for the guard's lifetime.
///
/// Worker threads spawned inside a [`ScopedSink`] scope call this before
/// emitting; without it their events are filtered out as potential
/// cross-talk from unrelated threads. With no scope active (or from the
/// scope-owning thread) the guard is a no-op. `jp-par` workers adopt
/// automatically.
#[must_use = "membership lasts only while the guard is alive"]
pub fn adopt() -> AdoptGuard {
    let tid = thread_id();
    let mut members = SCOPE_MEMBERS.lock().unwrap_or_else(|e| e.into_inner());
    let added = match members.as_mut() {
        Some(set) => set.insert(tid),
        None => false,
    };
    AdoptGuard { tid, added }
}

/// Scope membership for one worker thread; see [`adopt`].
pub struct AdoptGuard {
    tid: u64,
    added: bool,
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        if self.added {
            let mut members = SCOPE_MEMBERS.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(set) = members.as_mut() {
                set.remove(&self.tid);
            }
        }
    }
}

/// Makes `parent` (the `seq` of a span open on *another* thread) the
/// enclosing span for everything this thread emits while the guard
/// lives. `jp-par` workers link the runtime's `par.run` span this way,
/// so task spans executed on workers still form one tree with the
/// scheduling span that spawned them.
///
/// `None` is an inert guard, so callers can pass through an optional
/// parent without branching.
#[must_use = "the parent link lasts only while the guard is alive"]
pub fn link_parent(parent: Option<u64>) -> LinkGuard {
    if let Some(seq) = parent {
        SPAN_STACK.with(|s| s.borrow_mut().push(seq));
    }
    LinkGuard { seq: parent }
}

/// Cross-thread parent link for one worker thread; see [`link_parent`].
pub struct LinkGuard {
    seq: Option<u64>,
}

impl Drop for LinkGuard {
    fn drop(&mut self) {
        if let Some(seq) = self.seq {
            SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                if let Some(pos) = stack.iter().rposition(|&v| v == seq) {
                    stack.remove(pos);
                }
            });
        }
    }
}

/// Stamps every event this thread emits with serve-request `id` for the
/// guard's lifetime, restoring the previous request context on drop.
///
/// The dispatcher installs this on a worker right before running a
/// request's job, so queue-wait counters, memo probes, solver and wcoj
/// spans all carry the same `request` field as the wire frame that
/// caused them. `None` is an inert guard (the ambient context — usually
/// none — stays in place), so callers can pass an optional id through
/// without branching.
#[must_use = "the request context lasts only while the guard is alive"]
pub fn with_request(id: Option<u64>) -> RequestGuard {
    let previous = match id {
        Some(id) => CURRENT_REQUEST.with(|r| r.replace(Some(id))),
        None => None,
    };
    RequestGuard {
        installed: id.is_some(),
        previous,
    }
}

/// The request id events on this thread are currently stamped with.
pub fn current_request() -> Option<u64> {
    CURRENT_REQUEST.with(|r| r.get())
}

/// Request-context scope for one thread; see [`with_request`].
pub struct RequestGuard {
    installed: bool,
    previous: Option<u64>,
}

impl Drop for RequestGuard {
    fn drop(&mut self) {
        if self.installed {
            CURRENT_REQUEST.with(|r| r.set(self.previous));
        }
    }
}

/// Emits a counter event (no-op with no sink installed).
#[inline]
pub fn counter(component: &str, name: &str, value: u64) {
    if enabled() {
        let mut event = Event::counter(component, name, value);
        event.seq = SEQ.fetch_add(1, Ordering::Relaxed);
        event.thread = thread_id();
        event.start = epoch_micros();
        event.parent = current_span();
        event.request = current_request();
        dispatch(event);
    }
}

/// Starts an RAII span timer; the event is emitted on drop.
///
/// The span *reserves* its `seq` now (and records its `start` offset and
/// enclosing `parent`), then becomes the current span for this thread —
/// so counters and child spans opened before the guard drops carry this
/// span's `seq` as their `parent`, and a parent's `seq` is always
/// smaller than its children's.
///
/// With no sink installed the guard is inert: the clock is never read.
#[inline]
pub fn span(component: &'static str, name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            start: None,
            seq: 0,
            start_offset: 0,
            parent: None,
            request: None,
            component,
            name,
        };
    }
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let parent = current_span();
    SPAN_STACK.with(|s| s.borrow_mut().push(seq));
    SpanGuard {
        start: Some(Instant::now()),
        seq,
        start_offset: epoch_micros(),
        parent,
        // Like `parent`, the request context is captured at open: the
        // span belongs to whatever request was live when it started,
        // even if the guard drops after the dispatcher moved on.
        request: current_request(),
        component,
        name,
    }
}

/// Emits a span event with the elapsed time when dropped. See [`span`].
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard {
    start: Option<Instant>,
    seq: u64,
    start_offset: u64,
    parent: Option<u64>,
    request: Option<u64>,
    component: &'static str,
    name: &'static str,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            // Pop this span (wherever it sits — guards may be dropped
            // out of order) so later events no longer parent to it.
            SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                if let Some(pos) = stack.iter().rposition(|&v| v == self.seq) {
                    stack.remove(pos);
                }
            });
            // Re-check: the sink may have been cleared mid-span. The
            // reserved seq then stays unwritten, which `trace summary`
            // reports as an (expected) gap.
            if enabled() {
                let micros = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
                let mut event = Event::span(self.component, self.name, micros);
                event.seq = self.seq;
                event.thread = thread_id();
                event.start = self.start_offset;
                event.parent = self.parent;
                event.request = self.request;
                dispatch(event);
            }
        }
    }
}

/// Installs a sink for the lifetime of the guard, restoring the previous
/// state on drop.
///
/// Holders are serialized through a global lock, so concurrently running
/// tests that each install a [`ScopedSink`] observe only their own
/// events. While a scope is active, emission is additionally filtered to
/// the installing thread and any workers that [`adopt`]ed into the scope
/// — events from unrelated threads (e.g. another test's solver still
/// unwinding) are dropped instead of polluting the capture.
pub struct ScopedSink {
    _scope: MutexGuard<'static, ()>,
}

impl ScopedSink {
    /// Installs `sink`, blocking until any other scope has dropped.
    pub fn install(sink: Arc<dyn Sink>) -> Self {
        let scope = SCOPE.lock().unwrap_or_else(|e| e.into_inner());
        {
            let mut members = SCOPE_MEMBERS.lock().unwrap_or_else(|e| e.into_inner());
            *members = Some(BTreeSet::from([thread_id()]));
        }
        set_sink(sink);
        ScopedSink { _scope: scope }
    }
}

impl Drop for ScopedSink {
    fn drop(&mut self) {
        clear_sink();
        let mut members = SCOPE_MEMBERS.lock().unwrap_or_else(|e| e.into_inner());
        *members = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;
    use crate::EventKind;

    #[test]
    fn disabled_by_default_and_scoped_install_restores() {
        {
            let sink = Arc::new(MemorySink::new());
            let _guard = ScopedSink::install(sink.clone());
            assert!(enabled());
            counter("t", "a", 1);
            {
                let _span = span("t", "s");
            }
            let events = sink.events();
            assert_eq!(events.len(), 2);
            assert_eq!(events[0].kind, EventKind::Counter);
            assert_eq!(events[1].kind, EventKind::Span);
            // Sequence numbers are distinct (spans reserve theirs when
            // opened, so file order is not seq order in general).
            assert_ne!(events[0].seq, events[1].seq);
            // Both events carry this thread's id.
            assert_eq!(events[0].thread, thread_id());
            assert_eq!(events[1].thread, thread_id());
            assert_ne!(events[0].thread, 0, "placeholder id must be replaced");
        }
        // Counter after the scope must go nowhere (and not panic).
        counter("t", "b", 1);
    }

    #[test]
    fn spans_parent_their_children() {
        let sink = Arc::new(MemorySink::new());
        let _guard = ScopedSink::install(sink.clone());
        {
            let _outer = span("t", "outer");
            counter("t", "inside", 1);
            {
                let _inner = span("t", "inner");
                counter("t", "deep", 1);
            }
        }
        counter("t", "outside", 1);
        let events = sink.events();
        let by_name = |n: &str| events.iter().find(|e| e.name == n).unwrap();
        let outer = by_name("outer");
        let inner = by_name("inner");
        assert_eq!(outer.parent, None);
        assert_eq!(by_name("inside").parent, Some(outer.seq));
        assert_eq!(inner.parent, Some(outer.seq));
        assert_eq!(by_name("deep").parent, Some(inner.seq));
        assert_eq!(by_name("outside").parent, None);
        // Parents reserve seqs before their children.
        assert!(outer.seq < inner.seq);
        assert!(inner.seq < by_name("deep").seq);
        // Start offsets are monotone in nesting order.
        assert!(outer.start <= inner.start);
    }

    #[test]
    fn link_parent_adopts_a_foreign_span() {
        let sink = Arc::new(MemorySink::new());
        let _guard = ScopedSink::install(sink.clone());
        let outer = span("t", "cross_outer");
        let outer_seq = current_span().unwrap();
        std::thread::scope(|s| {
            s.spawn(|| {
                let _adopt = adopt();
                let _link = link_parent(Some(outer_seq));
                counter("t", "linked", 1);
                let _child = span("t", "cross_child");
            });
        });
        drop(outer);
        let events = sink.events();
        let by_name = |n: &str| events.iter().find(|e| e.name == n).unwrap();
        assert_eq!(by_name("linked").parent, Some(outer_seq));
        assert_eq!(by_name("cross_child").parent, Some(outer_seq));
        assert_eq!(by_name("cross_outer").seq, outer_seq);
        assert!(outer_seq < by_name("cross_child").seq);
    }

    #[test]
    fn link_parent_none_is_inert() {
        let _link = link_parent(None);
        assert_eq!(current_span(), None);
    }

    #[test]
    fn scoped_capture_filters_foreign_threads() {
        let sink = Arc::new(MemorySink::new());
        let _guard = ScopedSink::install(sink.clone());
        counter("t", "mine", 1);
        std::thread::scope(|s| {
            // Not adopted: filtered out as cross-talk.
            s.spawn(|| counter("t", "foreign", 1));
            // Adopted: captured, stamped with the worker's own id.
            s.spawn(|| {
                let _adopt = adopt();
                counter("t", "adopted", 1);
            });
        });
        let events = sink.events();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"mine"), "{names:?}");
        assert!(names.contains(&"adopted"), "{names:?}");
        assert!(!names.contains(&"foreign"), "{names:?}");
        let adopted = events.iter().find(|e| e.name == "adopted").unwrap();
        assert_ne!(adopted.thread, thread_id(), "worker keeps its own id");
    }

    #[test]
    fn adopt_outside_scope_is_inert() {
        let _adopt = adopt();
        // Nothing to assert beyond "does not panic / does not enable".
        assert!(!enabled());
    }

    #[test]
    fn plain_set_sink_observes_every_thread() {
        // Serialize against other ScopedSink tests.
        let scope = SCOPE.lock().unwrap_or_else(|e| e.into_inner());
        let sink = Arc::new(MemorySink::new());
        set_sink(sink.clone());
        std::thread::scope(|s| {
            s.spawn(|| counter("t", "unscoped_worker", 1));
        });
        clear_sink();
        drop(scope);
        let names: Vec<String> = sink.events().iter().map(|e| e.name.clone()).collect();
        assert!(names.contains(&"unscoped_worker".to_string()), "{names:?}");
    }

    #[test]
    fn with_request_stamps_counters_and_spans() {
        let sink = Arc::new(MemorySink::new());
        let _guard = ScopedSink::install(sink.clone());
        counter("t", "before", 1);
        {
            let _req = with_request(Some(42));
            counter("t", "inside", 1);
            {
                let _span = span("t", "work");
            }
            {
                // Nested contexts restore the outer id on drop.
                let _inner = with_request(Some(43));
                counter("t", "nested", 1);
            }
            counter("t", "restored", 1);
        }
        counter("t", "after", 1);
        let events = sink.events();
        let by_name = |n: &str| events.iter().find(|e| e.name == n).unwrap();
        assert_eq!(by_name("before").request, None);
        assert_eq!(by_name("inside").request, Some(42));
        assert_eq!(by_name("work").request, Some(42));
        assert_eq!(by_name("nested").request, Some(43));
        assert_eq!(by_name("restored").request, Some(42));
        assert_eq!(by_name("after").request, None);
    }

    #[test]
    fn with_request_none_is_inert() {
        let _outer = with_request(Some(7));
        {
            let _inner = with_request(None);
            assert_eq!(current_request(), Some(7));
        }
        assert_eq!(current_request(), Some(7));
        drop(_outer);
        assert_eq!(current_request(), None);
    }

    #[test]
    fn span_keeps_the_request_it_opened_under() {
        let sink = Arc::new(MemorySink::new());
        let _guard = ScopedSink::install(sink.clone());
        let opened = {
            let _req = with_request(Some(9));
            span("t", "outlives")
        };
        // The request context is gone, but the span opened under it.
        drop(opened);
        let events = sink.events();
        let e = events.iter().find(|e| e.name == "outlives").unwrap();
        assert_eq!(e.request, Some(9));
    }

    #[test]
    fn tap_sees_events_alongside_the_sink_and_alone() {
        let scope = SCOPE.lock().unwrap_or_else(|e| e.into_inner());
        let sink = Arc::new(MemorySink::new());
        let tap = Arc::new(MemorySink::new());
        let tap_guard = set_tap(tap.clone());
        assert!(enabled(), "a tap alone enables emission");
        counter("t", "tap_only", 1);
        set_sink(sink.clone());
        counter("t", "both", 1);
        clear_sink();
        assert!(enabled(), "the tap keeps emission on after clear_sink");
        counter("t", "tap_again", 1);
        drop(tap_guard);
        assert!(!enabled());
        drop(scope);
        let tap_names: Vec<String> = tap.events().iter().map(|e| e.name.clone()).collect();
        assert_eq!(tap_names, vec!["tap_only", "both", "tap_again"]);
        let sink_names: Vec<String> = sink.events().iter().map(|e| e.name.clone()).collect();
        assert_eq!(sink_names, vec!["both"]);
    }

    #[test]
    fn taps_stack_and_drop_independently() {
        let scope = SCOPE.lock().unwrap_or_else(|e| e.into_inner());
        let first = Arc::new(MemorySink::new());
        let second = Arc::new(MemorySink::new());
        let first_guard = set_tap(first.clone());
        let second_guard = set_tap(second.clone());
        counter("t", "both_taps", 1);
        // Dropping the *first* guard must not disturb the second tap —
        // this is a server's tail sampler outliving a shorter-lived
        // `jp explain` capture (or vice versa).
        drop(first_guard);
        assert!(enabled(), "the remaining tap keeps emission on");
        counter("t", "second_only", 1);
        drop(second_guard);
        assert!(!enabled());
        drop(scope);
        let first_names: Vec<String> = first.events().iter().map(|e| e.name.clone()).collect();
        assert_eq!(first_names, vec!["both_taps"]);
        let second_names: Vec<String> = second.events().iter().map(|e| e.name.clone()).collect();
        assert_eq!(second_names, vec!["both_taps", "second_only"]);
    }

    #[test]
    fn thread_ids_are_stable_and_distinct() {
        let mine = thread_id();
        assert_eq!(mine, thread_id(), "stable within a thread");
        let other = std::thread::scope(|s| s.spawn(thread_id).join().unwrap());
        assert_ne!(mine, other);
        assert_ne!(other, 0);
    }
}
