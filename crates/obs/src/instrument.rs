//! Atomic instruments for long-lived, cross-thread aggregation.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone atomic counter.
///
/// `add` only ever increases the value, so any sequence of observed
/// `get()`s is non-decreasing — the property the obs test suite checks.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Emits the current value as a counter event via the global sink.
    pub fn emit(&self, component: &str, name: &str) {
        crate::global::counter(component, name, self.get());
    }
}

/// Number of power-of-two buckets a [`Histogram`] tracks: bucket `i`
/// counts values `v` with `floor(log2(v)) + 1 == i` (bucket 0 counts
/// zeros), so the full `u64` range is covered.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A lock-free histogram over power-of-two buckets.
///
/// Tracks count, sum, and per-bucket totals; good enough to answer
/// "what was the distribution of component sizes / span durations"
/// without allocating per observation.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn bucket_index(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Records one value.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean of observed values (0 if empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Per-bucket observation counts.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// An upper bound for the value at quantile `q` in `[0, 1]`: the top
    /// of the first bucket whose cumulative count reaches `q * count`.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, c) in self.bucket_counts().iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return ((1u128 << i) - 1) as u64;
            }
        }
        u64::MAX
    }
}

/// The nearest-rank quantile of an **ascending-sorted** slice: the
/// smallest element whose rank covers fraction `q` of the data (`q` is
/// clamped to `[0, 1]`; an empty slice yields 0).
///
/// This is the exact-percentile counterpart to
/// [`Histogram::quantile_upper_bound`], shared by the `--stats` renderer
/// and the `jp-lens` trace analyzer so both report identical numbers.
pub fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len();
    let rank = (q.clamp(0.0, 1.0) * n as f64).ceil() as usize;
    let idx = rank.max(1).min(n) - 1;
    sorted.get(idx).copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_matches_the_textbook_definition() {
        assert_eq!(nearest_rank(&[], 0.5), 0);
        assert_eq!(nearest_rank(&[7], 0.5), 7);
        let v = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(nearest_rank(&v, 0.0), 1);
        assert_eq!(nearest_rank(&v, 0.5), 5);
        assert_eq!(nearest_rank(&v, 0.95), 10);
        assert_eq!(nearest_rank(&v, 1.0), 10);
        let odd = [10, 20, 30];
        assert_eq!(nearest_rank(&odd, 0.5), 20);
        assert_eq!(nearest_rank(&odd, 0.95), 30);
    }

    #[test]
    fn counter_is_monotone_across_threads() {
        let c = std::sync::Arc::new(Counter::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.inc();
                }
            }));
        }
        let mut last = 0;
        while handles.iter().any(|h| !h.is_finished()) {
            let now = c.get();
            assert!(now >= last);
            last = now;
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }

    #[test]
    fn histogram_buckets_cover_the_domain() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1023, 1024, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        let buckets = h.bucket_counts();
        assert_eq!(buckets[0], 1); // the zero
        assert_eq!(buckets[1], 1); // 1
        assert_eq!(buckets[2], 2); // 2, 3
        assert_eq!(buckets[3], 1); // 4
        assert_eq!(buckets[10], 1); // 1023
        assert_eq!(buckets[11], 1); // 1024
        assert_eq!(buckets[64], 1); // u64::MAX
        assert_eq!(buckets.iter().sum::<u64>(), h.count());
        assert!(h.quantile_upper_bound(0.5) >= 3);
    }
}
