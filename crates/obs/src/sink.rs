//! Event destinations.

use crate::event::{Event, EventKind};
use serde::Serialize;
use std::collections::BTreeMap;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Receives every emitted [`Event`].
///
/// Implementations must be cheap and non-blocking where possible: they
/// run inline on the solver thread.
pub trait Sink: Send + Sync {
    /// Records one event.
    fn record(&self, event: &Event);

    /// Flushes any buffered output (no-op by default).
    fn flush(&self) {}
}

/// Discards everything. Useful as an explicit "measured but unobserved"
/// placeholder; with no sink installed the emitters short-circuit before
/// even constructing an event, which is cheaper still.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn record(&self, _event: &Event) {}
}

/// Writes each event as one JSON object per line.
pub struct JsonlSink {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl JsonlSink {
    /// A sink writing to (truncating) the file at `path`.
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::to_writer(Box::new(file)))
    }

    /// A sink writing to stderr.
    pub fn to_stderr() -> Self {
        Self::to_writer(Box::new(io::stderr()))
    }

    /// A sink writing to an arbitrary writer.
    pub fn to_writer(w: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: Mutex::new(BufWriter::new(w)),
        }
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let line = serde_json::to_string(event).expect("event serialization is infallible");
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        // A broken pipe mid-trace should not take the solver down.
        let _ = writeln!(out, "{line}");
    }

    fn flush(&self) {
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = out.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        Sink::flush(self);
    }
}

/// Buffers events in memory; the test workhorse.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of everything recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event.clone());
    }
}

/// Aggregated view of a run, keyed by `component.name`.
///
/// Counters accumulate their values; spans accumulate call counts,
/// total microseconds, and the exact per-call duration histogram behind
/// the p50/p95/max columns. Round-trips through `serde_json` with
/// deterministic (sorted-key) output: every map is a `BTreeMap` and the
/// duration lists are sorted ascending in a [`StatsSink::snapshot`].
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct StatsSnapshot {
    /// Total per counter signal.
    pub counters: BTreeMap<String, u64>,
    /// Number of span events per signal.
    pub span_counts: BTreeMap<String, u64>,
    /// Total elapsed microseconds per span signal.
    pub span_micros: BTreeMap<String, u64>,
    /// Every span duration per signal (microseconds, sorted ascending in
    /// snapshots) — the exact histogram behind the percentile columns.
    pub span_values: BTreeMap<String, Vec<u64>>,
}

// Hand-written so snapshots serialized by older builds (no
// `span_values`, e.g. the committed bench baselines from earlier PRs)
// still deserialize: any missing map is simply empty.
impl serde::Deserialize for StatsSnapshot {
    fn from_content(content: &serde::Content) -> Result<Self, serde::DeError> {
        let map = content
            .as_map()
            .ok_or_else(|| serde::DeError::expected("object for `StatsSnapshot`", content))?;
        Ok(StatsSnapshot {
            counters: serde::field::<Option<_>>(map, "StatsSnapshot", "counters")?
                .unwrap_or_default(),
            span_counts: serde::field::<Option<_>>(map, "StatsSnapshot", "span_counts")?
                .unwrap_or_default(),
            span_micros: serde::field::<Option<_>>(map, "StatsSnapshot", "span_micros")?
                .unwrap_or_default(),
            span_values: serde::field::<Option<_>>(map, "StatsSnapshot", "span_values")?
                .unwrap_or_default(),
        })
    }
}

impl StatsSnapshot {
    /// Renders a human-readable summary (for `--stats`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (key, v) in &self.counters {
                out.push_str(&format!("  {key:<40} {v}\n"));
            }
        }
        if !self.span_micros.is_empty() {
            out.push_str("spans:\n");
            for (key, micros) in &self.span_micros {
                let calls = self.span_counts.get(key).copied().unwrap_or(0);
                let mut values = self.span_values.get(key).cloned().unwrap_or_default();
                values.sort_unstable();
                let p50 = crate::nearest_rank(&values, 0.50);
                let p95 = crate::nearest_rank(&values, 0.95);
                let p99 = crate::nearest_rank(&values, 0.99);
                let max = values.last().copied().unwrap_or(0);
                out.push_str(&format!(
                    "  {key:<40} {micros} µs over {calls} call(s), p50 {p50} p95 {p95} p99 {p99} max {max} µs\n"
                ));
            }
        }
        if out.is_empty() {
            out.push_str("no events recorded\n");
        }
        out
    }
}

/// Aggregates events into a [`StatsSnapshot`] without retaining them.
#[derive(Debug, Default)]
pub struct StatsSink {
    snapshot: Mutex<StatsSnapshot>,
}

impl StatsSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The aggregation so far, with every duration list sorted ascending
    /// so serialized snapshots are deterministic.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut snap = self
            .snapshot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        for values in snap.span_values.values_mut() {
            values.sort_unstable();
        }
        snap
    }
}

impl Sink for StatsSink {
    fn record(&self, event: &Event) {
        let key = format!("{}.{}", event.component, event.name);
        let mut snap = self.snapshot.lock().unwrap_or_else(|e| e.into_inner());
        match event.kind {
            EventKind::Counter => {
                *snap.counters.entry(key).or_insert(0) += event.value;
            }
            EventKind::Span => {
                *snap.span_counts.entry(key.clone()).or_insert(0) += 1;
                *snap.span_micros.entry(key.clone()).or_insert(0) += event.value;
                snap.span_values.entry(key).or_default().push(event.value);
            }
        }
    }
}

/// Tees every event to several sinks (e.g. `--trace` and `--stats`
/// together).
pub struct FanoutSink {
    sinks: Vec<std::sync::Arc<dyn Sink>>,
}

impl FanoutSink {
    /// A sink forwarding to all of `sinks`.
    pub fn new(sinks: Vec<std::sync::Arc<dyn Sink>>) -> Self {
        FanoutSink { sinks }
    }
}

impl Sink for FanoutSink {
    fn record(&self, event: &Event) {
        for s in &self.sinks {
            s.record(event);
        }
    }

    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_sink_aggregates_by_component_and_name() {
        let sink = StatsSink::new();
        sink.record(&Event::counter("bb", "nodes", 10));
        sink.record(&Event::counter("bb", "nodes", 5));
        sink.record(&Event::counter("exact", "nodes", 1));
        sink.record(&Event::span("bb", "search", 100));
        sink.record(&Event::span("bb", "search", 50));
        let snap = sink.snapshot();
        assert_eq!(snap.counters["bb.nodes"], 15);
        assert_eq!(snap.counters["exact.nodes"], 1);
        assert_eq!(snap.span_counts["bb.search"], 2);
        assert_eq!(snap.span_micros["bb.search"], 150);
        assert_eq!(snap.span_values["bb.search"], vec![50, 100]);
        let json = serde_json::to_string(&snap).unwrap();
        let back: StatsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshots_without_span_values_still_deserialize() {
        // The shape serialized before span_values existed (committed
        // bench baselines from earlier revisions).
        let json = r#"{"counters":{"bb.nodes":3},"span_counts":{"bb.search":1},"span_micros":{"bb.search":9}}"#;
        let snap: StatsSnapshot = serde_json::from_str(json).unwrap();
        assert_eq!(snap.counters["bb.nodes"], 3);
        assert!(snap.span_values.is_empty());
    }

    #[test]
    fn render_reports_exact_percentiles() {
        let sink = StatsSink::new();
        for v in [10, 20, 30, 40, 1000] {
            sink.record(&Event::span("bb", "search", v));
        }
        let text = sink.snapshot().render();
        assert!(
            text.contains("p50 30 p95 1000 p99 1000 max 1000"),
            "render = {text}"
        );
    }

    #[test]
    fn jsonl_sink_writes_one_object_per_line() {
        let path = std::env::temp_dir().join("jp_obs_sink_test.jsonl");
        {
            let sink = JsonlSink::to_file(&path).unwrap();
            sink.record(&Event::counter("a", "x", 1));
            sink.record(&Event::span("a", "s", 2));
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let e: Event = serde_json::from_str(line).unwrap();
            assert_eq!(e.component, "a");
        }
        let _ = std::fs::remove_file(&path);
    }
}
