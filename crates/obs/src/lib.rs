#![forbid(unsafe_code)]
//! `jp-obs` — hand-rolled, std-only observability for the solver ladder.
//!
//! The paper measures *tuple-level work* (pebble placements, jumps), not
//! wall-clock time, so the solvers need to report what they actually did:
//! how many DP states Held–Karp touched, how many nodes branch-and-bound
//! expanded and why it pruned, how many improving moves 2-opt found. This
//! crate is the plumbing: instruments record, a pluggable [`Sink`]
//! receives, and when no sink is installed the whole layer costs one
//! relaxed atomic load per call site.
//!
//! # Architecture
//!
//! * [`Event`] — one observation: a `Counter` value or a `Span` duration,
//!   tagged with a `component` (which solver) and a `name` (which
//!   signal). Serializes to one JSON object per line (JSONL).
//! * [`Sink`] — where events go. Provided: [`JsonlSink`] (file or
//!   stderr), [`MemorySink`] (tests), [`StatsSink`] (in-process
//!   aggregation for `--stats` and the bench harness), [`NoopSink`], and
//!   [`FanoutSink`] (tee).
//! * [`counter`]/[`span`] — the emission API solvers call. Both check the
//!   global enabled flag first; with no sink installed they return
//!   immediately without allocating or reading the clock.
//! * [`Counter`]/[`Histogram`] — atomic instruments for long-lived
//!   aggregation (monotone by construction; see the property tests).
//! * [`ScopedSink`] — RAII installation for tests and CLI runs; restores
//!   the previous sink on drop and serializes concurrent installers.
//!   While a scope is active, emission is filtered to the installing
//!   thread plus any worker threads that [`adopt`]ed into the scope, so
//!   captures never see cross-talk from unrelated threads.
//! * [`adopt`]/[`thread_id`] — parallel-runtime hooks: workers adopt
//!   into the active scope for their lifetime, and every event is
//!   stamped with the emitting thread's process-local id.
//!
//! # Event schema (version 2)
//!
//! ```json
//! {"v":2,"seq":17,"thread":1,"kind":"Counter","component":"bb","name":"nodes_expanded","value":4093,"start":210,"parent":12}
//! {"v":2,"seq":12,"thread":3,"kind":"Span","component":"bb","name":"search","value":1250,"start":180}
//! ```
//!
//! `seq` is a process-wide monotone sequence number (spans *reserve*
//! theirs when opened, so parents order before children); `thread` is
//! the process-local id of the emitting thread (stable per thread,
//! assigned in first-emission order); `value` is the counter value for
//! `Counter` events and elapsed microseconds for `Span` events; `start`
//! is a monotonic microsecond offset since the sink was installed; the
//! optional `parent` is the `seq` of the enclosing span and is omitted
//! at top level; the optional `request` is the serve-request id the
//! event belongs to ([`with_request`]) and is likewise omitted when
//! absent. Version-1 traces (no `v`, no `start`/`parent`) still
//! parse. The full per-version field reference lives in the [`event`]
//! module docs; [`SCHEMA_VERSION`] is what this build writes.

pub mod event;
mod global;
mod instrument;
mod sink;

pub use event::{Event, EventKind, SCHEMA_VERSION};
pub use global::{
    adopt, clear_sink, counter, current_request, current_span, enabled, link_parent, set_sink,
    set_tap, span, thread_id, with_request, AdoptGuard, LinkGuard, RequestGuard, ScopedSink,
    SpanGuard, TapGuard,
};
pub use instrument::{nearest_rank, Counter, Histogram};
pub use sink::{FanoutSink, JsonlSink, MemorySink, NoopSink, Sink, StatsSink, StatsSnapshot};
