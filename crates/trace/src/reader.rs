//! Streaming, damage-tolerant JSONL trace reading.
//!
//! Traces come from crashed runs, truncated pipes, and concatenated
//! files, so the reader treats every line independently: a line that
//! fails to parse is *skipped and counted*, never a reason to panic or
//! abort. Skips are classified so `trace summary` can tell an operator
//! whether the file is damaged (corrupt JSON), written by a newer build
//! (unsupported schema version), or merely carries event kinds this
//! build does not know.

use jp_obs::{Event, SCHEMA_VERSION};
use serde::{Content, DeError, Deserialize};
use std::io::{self, BufRead};
use std::path::Path;

/// How many skipped lines keep a sample of their reason in the report.
const MAX_SKIP_SAMPLES: usize = 8;

/// One skipped line: its 1-based line number and why it was skipped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkipSample {
    /// 1-based line number in the input.
    pub line: u64,
    /// Human-readable reason.
    pub reason: String,
}

/// What the reader saw: totals plus per-class skip counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReadReport {
    /// Non-blank lines examined.
    pub lines: u64,
    /// Lines that parsed into an [`Event`].
    pub events: u64,
    /// Lines that were not valid JSON objects of the expected shape
    /// (truncation, interleaved garbage, missing/mistyped fields).
    pub skipped_corrupt: u64,
    /// Lines whose `kind` is none of the kinds this build knows.
    pub skipped_unknown_kind: u64,
    /// Lines tagged with a schema version newer than
    /// [`jp_obs::SCHEMA_VERSION`].
    pub skipped_unsupported_version: u64,
    /// The first few skips, with reasons (capped at 8).
    pub samples: Vec<SkipSample>,
}

impl ReadReport {
    /// Total skipped lines across all classes.
    pub fn skipped(&self) -> u64 {
        self.skipped_corrupt + self.skipped_unknown_kind + self.skipped_unsupported_version
    }

    fn skip(&mut self, line: u64, reason: String) {
        if self.samples.len() < MAX_SKIP_SAMPLES {
            self.samples.push(SkipSample { line, reason });
        }
    }

    /// Renders the skip summary (empty string when nothing was skipped).
    pub fn render(&self) -> String {
        if self.skipped() == 0 {
            return String::new();
        }
        let mut out = format!(
            "warning: skipped {} of {} line(s): {} corrupt, {} unknown kind, {} unsupported schema version\n",
            self.skipped(),
            self.lines,
            self.skipped_corrupt,
            self.skipped_unknown_kind,
            self.skipped_unsupported_version
        );
        for s in &self.samples {
            out.push_str(&format!("  line {}: {}\n", s.line, s.reason));
        }
        out
    }
}

/// A shape-tolerant probe used only to *classify* lines that failed to
/// parse as an [`Event`]: is this corrupt JSON, a future schema, or an
/// unknown kind?
struct Probe {
    v: Option<u64>,
    kind_present: bool,
    kind: Option<String>,
}

impl Deserialize for Probe {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let map = content
            .as_map()
            .ok_or_else(|| DeError::expected("object", content))?;
        let v = map
            .iter()
            .find(|(k, _)| k == "v")
            .and_then(|(_, c)| match c {
                Content::U64(n) => Some(*n),
                _ => None,
            });
        let kind_entry = map.iter().find(|(k, _)| k == "kind");
        Ok(Probe {
            v,
            kind_present: kind_entry.is_some(),
            kind: kind_entry.and_then(|(_, c)| c.as_str()).map(String::from),
        })
    }
}

fn classify_failure(line_no: u64, line: &str, err: &str, report: &mut ReadReport) {
    match serde_json::from_str::<Probe>(line) {
        Ok(probe) => {
            if let Some(v) = probe.v {
                if v > SCHEMA_VERSION {
                    report.skipped_unsupported_version += 1;
                    report.skip(
                        line_no,
                        format!("schema version {v} (this build reads up to {SCHEMA_VERSION})"),
                    );
                    return;
                }
            }
            if probe.kind_present
                && !matches!(probe.kind.as_deref(), Some("Counter") | Some("Span"))
            {
                report.skipped_unknown_kind += 1;
                let kind = probe.kind.unwrap_or_else(|| "<non-string>".to_string());
                report.skip(line_no, format!("unknown event kind `{kind}`"));
                return;
            }
            report.skipped_corrupt += 1;
            report.skip(line_no, format!("malformed event: {err}"));
        }
        Err(_) => {
            report.skipped_corrupt += 1;
            report.skip(line_no, format!("not valid JSON: {err}"));
        }
    }
}

/// Parses a whole trace held in memory. Blank lines are ignored; every
/// non-blank line either yields an event or increments a skip counter.
pub fn parse_trace(text: &str) -> (Vec<Event>, ReadReport) {
    let mut events = Vec::new();
    let mut report = ReadReport::default();
    let mut line_no = 0u64;
    for raw in text.lines() {
        line_no += 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        report.lines += 1;
        match serde_json::from_str::<Event>(line) {
            Ok(event) => {
                report.events += 1;
                events.push(event);
            }
            Err(err) => classify_failure(line_no, line, &err.to_string(), &mut report),
        }
    }
    (events, report)
}

/// Streams a trace file line by line (a line that is not valid UTF-8
/// counts as corrupt; only opening the file can fail).
pub fn read_trace(path: impl AsRef<Path>) -> io::Result<(Vec<Event>, ReadReport)> {
    let file = std::fs::File::open(path)?;
    let mut reader = io::BufReader::new(file);
    let mut events = Vec::new();
    let mut report = ReadReport::default();
    let mut line_no = 0u64;
    let mut buf = Vec::new();
    loop {
        buf.clear();
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => break,
            Ok(_) => {}
            Err(err) => return Err(err),
        }
        line_no += 1;
        let Ok(raw) = std::str::from_utf8(&buf) else {
            report.lines += 1;
            report.skipped_corrupt += 1;
            report.skip(line_no, "not valid UTF-8".to_string());
            continue;
        };
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        report.lines += 1;
        match serde_json::from_str::<Event>(line) {
            Ok(event) => {
                report.events += 1;
                events.push(event);
            }
            Err(err) => classify_failure(line_no, line, &err.to_string(), &mut report),
        }
    }
    Ok((events, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(seq: u64) -> String {
        format!(
            r#"{{"v":2,"seq":{seq},"thread":1,"kind":"Counter","component":"exact","name":"dp_states","value":5,"start":0}}"#
        )
    }

    #[test]
    fn well_formed_traces_parse_fully() {
        let text = format!("{}\n{}\n", line(1), line(2));
        let (events, report) = parse_trace(&text);
        assert_eq!(events.len(), 2);
        assert_eq!(report.events, 2);
        assert_eq!(report.skipped(), 0);
        assert!(report.render().is_empty());
    }

    #[test]
    fn truncated_final_line_is_one_corrupt_skip() {
        let text = format!("{}\n{}", line(1), &line(2)[..30]);
        let (events, report) = parse_trace(&text);
        assert_eq!(events.len(), 1);
        assert_eq!(report.skipped_corrupt, 1);
        assert_eq!(report.skipped(), 1);
    }

    #[test]
    fn interleaved_garbage_is_counted_not_fatal() {
        let text = format!("{}\nnot json at all\n\n{}\n<<<>>>\n", line(1), line(2));
        let (events, report) = parse_trace(&text);
        assert_eq!(events.len(), 2);
        assert_eq!(report.lines, 4, "blank line is not counted");
        assert_eq!(report.skipped_corrupt, 2);
    }

    #[test]
    fn unknown_kind_and_future_version_are_classified() {
        let unknown = r#"{"v":2,"seq":3,"thread":1,"kind":"Gauge","component":"x","name":"y","value":1,"start":0}"#;
        let future = r#"{"v":9,"seq":4,"thread":1,"kind":"Counter","component":"x","name":"y","value":1,"start":0}"#;
        let text = format!("{}\n{unknown}\n{future}\n", line(1));
        let (events, report) = parse_trace(&text);
        assert_eq!(events.len(), 1);
        assert_eq!(report.skipped_unknown_kind, 1);
        assert_eq!(report.skipped_unsupported_version, 1);
        assert_eq!(report.skipped_corrupt, 0);
        let rendered = report.render();
        assert!(rendered.contains("unknown kind"), "{rendered}");
        assert!(rendered.contains("Gauge"), "{rendered}");
    }

    #[test]
    fn version_1_lines_parse_with_defaults() {
        let v1 =
            r#"{"seq":9,"thread":2,"kind":"Span","component":"bb","name":"search","value":17}"#;
        let (events, report) = parse_trace(v1);
        assert_eq!(report.skipped(), 0);
        assert_eq!(events.len(), 1);
        let e = events.first().unwrap();
        assert_eq!(e.start, 0);
        assert_eq!(e.parent, None);
    }
}
