//! Baseline comparison with per-counter noise tolerances.
//!
//! The committed `BENCH_pebbling.json` records, per (family, solver,
//! threads) case, the *work counters* the solvers emitted. Work is the
//! paper's cost model, and most counters are exactly reproducible, so a
//! drift is a real behavioural change — but not all counters are equal.
//! [`check_against`] classifies every `component.name` key:
//!
//! * **Answer** keys (`portfolio.winner_cost`, `portfolio.floor`) admit
//!   zero tolerance: any difference is a **hard** finding — the solver
//!   changed its output or its certified bound.
//! * **Scheduling** keys (`par.*`, `portfolio.winner.*`,
//!   `portfolio.completed` / `abandoned`, `exact.abandoned_at_mask`)
//!   depend on thread interleaving; drift is reported as **soft** (never
//!   failing) and only when it exceeds [`Tolerances::soft_rel`].
//! * **Memory** keys (`mem.*`, published by the jp-pulse allocation
//!   accounting) gate allocation regressions: drift beyond
//!   [`Tolerances::mem_rel`] *and* [`Tolerances::mem_abs`] is **hard**
//!   (the absolute floor is a full mebibyte — allocation byte counts
//!   jitter with scheduling, so only megabyte-scale drift is signal).
//!   A `mem.*` key missing from the run is always **soft** — the
//!   tracking allocator is feature-gated and may be compiled out.
//! * **Work** keys (everything else: `exact.dp_states`,
//!   `bb.nodes_expanded`, `memo.hit`, …) are deterministic for a fixed
//!   input and thread count; drift beyond [`Tolerances::hard_rel`]
//!   *and* [`Tolerances::hard_abs`] is **hard**, as is a deterministic
//!   counter disappearing entirely.
//! * Span **timings** and wall clock are machine-dependent: always
//!   soft, reported only past `soft_rel`.
//!
//! A check passes iff it produced no hard finding; `trace check` turns
//! that into the CI exit code.

use crate::analyze::Analysis;
use jp_obs::StatsSnapshot;
use serde::Deserialize;
use std::collections::BTreeSet;

/// One `(family, solver, threads)` entry of `BENCH_pebbling.json`.
#[derive(Debug, Clone, Deserialize)]
pub struct BaselineCase {
    /// Graph family name, e.g. `spider_10`.
    pub family: String,
    /// Solver name, e.g. `portfolio`.
    pub solver: String,
    /// Worker threads the case was measured with.
    pub threads: u64,
    /// Edge count of the instance.
    pub edges: u64,
    /// The scheme cost the solver reported.
    pub effective_cost: u64,
    /// Wall time of the measured run (informational only).
    pub wall_micros: u64,
    /// The captured counter/span aggregation.
    pub stats: StatsSnapshot,
}

/// Parses the full baseline file (a JSON array of cases).
pub fn load_baseline(text: &str) -> Result<Vec<BaselineCase>, String> {
    serde_json::from_str::<Vec<BaselineCase>>(text).map_err(|e| format!("baseline: {e}"))
}

/// Finds the case matching `(family, solver, threads)`.
pub fn find_case<'a>(
    cases: &'a [BaselineCase],
    family: &str,
    solver: &str,
    threads: u64,
) -> Option<&'a BaselineCase> {
    cases
        .iter()
        .find(|c| c.family == family && c.solver == solver && c.threads == threads)
}

/// Severity of a finding: soft findings are advisory, a single hard
/// finding fails the check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory — expected run-to-run or machine-to-machine noise.
    Soft,
    /// Regression — deterministic work changed beyond tolerance.
    Hard,
}

/// One observed difference.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Severity class.
    pub severity: Severity,
    /// The `component.name` key (or `wall_micros` / `span:*`).
    pub key: String,
    /// Baseline value, if the key existed there.
    pub baseline: Option<u64>,
    /// Observed value, if the key exists in the run.
    pub observed: Option<u64>,
    /// Human-readable explanation.
    pub detail: String,
}

/// The outcome of a comparison.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// All findings, hard first, then by key.
    pub findings: Vec<Finding>,
}

impl DiffReport {
    /// Whether any hard finding was produced (the check failed).
    pub fn has_hard(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Hard)
    }

    fn push(&mut self, f: Finding) {
        self.findings.push(f);
    }

    fn finish(mut self) -> Self {
        self.findings
            .sort_by(|a, b| b.severity.cmp(&a.severity).then(a.key.cmp(&b.key)));
        self
    }

    /// Renders the findings (and the verdict line).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let sev = match f.severity {
                Severity::Hard => "HARD",
                Severity::Soft => "soft",
            };
            let base = f.baseline.map_or("absent".to_string(), |v| v.to_string());
            let obs = f.observed.map_or("absent".to_string(), |v| v.to_string());
            out.push_str(&format!(
                "{sev}  {key:<40} baseline {base:>12} observed {obs:>12}  {detail}\n",
                key = f.key,
                detail = f.detail
            ));
        }
        let hard = self
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Hard)
            .count();
        out.push_str(&format!(
            "{} finding(s), {} hard — {}\n",
            self.findings.len(),
            hard,
            if hard == 0 { "PASS" } else { "FAIL" }
        ));
        out
    }
}

/// Noise tolerances, per severity class. The defaults are the
/// documented gate used by CI:
///
/// * `hard_rel` = 0.10, `hard_abs` = 2 — a work counter fails only when
///   it drifts by more than 10% *and* more than 2 absolute units, so
///   tiny counters don't flap;
/// * `soft_rel` = 0.50 — scheduling counters and timings are only worth
///   mentioning past 50% drift;
/// * `mem_rel` = 0.25, `mem_abs` = 1 MiB — allocation accounting fails
///   only past 25% *and* 1 MiB drift: byte counts jitter with thread
///   scheduling, portfolio abort timing, and std internals, so only
///   megabyte-scale regressions are signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// Relative drift above which a work counter is a hard finding.
    pub hard_rel: f64,
    /// Absolute drift a work counter must also exceed to be hard.
    pub hard_abs: u64,
    /// Relative drift above which soft-class keys are reported at all.
    pub soft_rel: f64,
    /// Relative drift above which a `mem.*` key is a hard finding.
    pub mem_rel: f64,
    /// Absolute drift a `mem.*` key must also exceed to be hard.
    pub mem_abs: u64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            hard_rel: 0.10,
            hard_abs: 2,
            soft_rel: 0.50,
            mem_rel: 0.25,
            mem_abs: 1024 * 1024,
        }
    }
}

/// The counter classes; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Answer,
    Scheduling,
    Memory,
    Work,
}

fn class_of(key: &str) -> Class {
    match key {
        "portfolio.winner_cost" | "portfolio.floor" => Class::Answer,
        // jp-serve end-of-run totals: for a fixed workload these are
        // exact invariants of the serving stack — any drift means a
        // lost, failed, or wrongly answered request
        "serve.cost_sum"
        | "serve.completed_total"
        | "serve.errors_total"
        | "serve.rejected_total" => Class::Answer,
        "portfolio.completed" | "portfolio.abandoned" | "exact.abandoned_at_mask" => {
            Class::Scheduling
        }
        _ if key.starts_with("par.") || key.starts_with("portfolio.winner.") => Class::Scheduling,
        _ if key.starts_with("mem.") => Class::Memory,
        _ => Class::Work,
    }
}

fn rel_drift(baseline: u64, observed: u64) -> f64 {
    let diff = baseline.abs_diff(observed) as f64;
    diff / (baseline.max(1)) as f64
}

fn compare_key(
    report: &mut DiffReport,
    key: &str,
    label: &str,
    baseline: Option<u64>,
    observed: Option<u64>,
    timing: bool,
    tol: &Tolerances,
) {
    let class = if timing {
        Class::Scheduling
    } else {
        class_of(key)
    };
    match (baseline, observed) {
        (Some(b), Some(o)) if b == o => {}
        (Some(b), Some(o)) => {
            let rel = rel_drift(b, o);
            let abs = b.abs_diff(o);
            match class {
                Class::Answer => report.push(Finding {
                    severity: Severity::Hard,
                    key: key.to_string(),
                    baseline: Some(b),
                    observed: Some(o),
                    detail: format!("{label} admits zero tolerance (solver answer changed)"),
                }),
                Class::Work if rel > tol.hard_rel && abs > tol.hard_abs => {
                    report.push(Finding {
                        severity: Severity::Hard,
                        key: key.to_string(),
                        baseline: Some(b),
                        observed: Some(o),
                        detail: format!(
                            "{label} drifted {:.0}% (> {:.0}% and > {} absolute)",
                            rel * 100.0,
                            tol.hard_rel * 100.0,
                            tol.hard_abs
                        ),
                    });
                }
                Class::Memory if rel > tol.mem_rel && abs > tol.mem_abs => {
                    report.push(Finding {
                        severity: Severity::Hard,
                        key: key.to_string(),
                        baseline: Some(b),
                        observed: Some(o),
                        detail: format!(
                            "allocation drifted {:.0}% (> {:.0}% and > {} absolute)",
                            rel * 100.0,
                            tol.mem_rel * 100.0,
                            tol.mem_abs
                        ),
                    });
                }
                Class::Work | Class::Scheduling | Class::Memory if rel > tol.soft_rel => {
                    report.push(Finding {
                        severity: Severity::Soft,
                        key: key.to_string(),
                        baseline: Some(b),
                        observed: Some(o),
                        detail: format!("{label} drifted {:.0}% (within gate)", rel * 100.0),
                    });
                }
                _ => {}
            }
        }
        (Some(b), None) => {
            let severity = match class {
                Class::Answer | Class::Work if !timing => Severity::Hard,
                _ => Severity::Soft,
            };
            report.push(Finding {
                severity,
                key: key.to_string(),
                baseline: Some(b),
                observed: None,
                detail: format!("{label} present in baseline but missing from the run"),
            });
        }
        (None, Some(o)) => report.push(Finding {
            severity: Severity::Soft,
            key: key.to_string(),
            baseline: None,
            observed: Some(o),
            detail: format!("{label} emitted by the run but absent from the baseline"),
        }),
        (None, None) => {}
    }
}

/// Checks a run's aggregation against one baseline case. The run is
/// usually an [`Analysis`] of a per-case trace produced by the baseline
/// bench with `--trace-dir`.
pub fn check_against(case: &BaselineCase, run: &Analysis, tol: &Tolerances) -> DiffReport {
    let mut report = DiffReport::default();
    let keys: BTreeSet<&String> = case
        .stats
        .counters
        .keys()
        .chain(run.counters.keys())
        .collect();
    for key in keys {
        compare_key(
            &mut report,
            key,
            "work counter",
            case.stats.counters.get(key).copied(),
            run.counters.get(key).copied(),
            false,
            tol,
        );
    }
    let span_keys: BTreeSet<&String> = case
        .stats
        .span_counts
        .keys()
        .chain(run.spans.keys())
        .collect();
    for key in span_keys {
        compare_key(
            &mut report,
            &format!("span-count:{key}"),
            "span count",
            case.stats.span_counts.get(key).copied(),
            run.spans.get(key).map(|s| s.count),
            false,
            tol,
        );
        compare_key(
            &mut report,
            &format!("span-micros:{key}"),
            "span timing",
            case.stats.span_micros.get(key).copied(),
            run.spans.get(key).map(|s| s.total),
            true,
            tol,
        );
    }
    report.finish()
}

/// Symmetric comparison of two analyzed runs (`trace diff A B`): every
/// difference is soft — this is a lens, not a gate.
pub fn diff_analyses(a: &Analysis, b: &Analysis, tol: &Tolerances) -> DiffReport {
    let mut report = DiffReport::default();
    let keys: BTreeSet<&String> = a.counters.keys().chain(b.counters.keys()).collect();
    for key in keys {
        let (va, vb) = (a.counters.get(key).copied(), b.counters.get(key).copied());
        if va != vb {
            let rel = match (va, vb) {
                (Some(x), Some(y)) => rel_drift(x, y),
                _ => f64::INFINITY,
            };
            report.push(Finding {
                severity: Severity::Soft,
                key: key.to_string(),
                baseline: va,
                observed: vb,
                detail: format!("counter differs by {:.0}%", rel.min(9.99) * 100.0),
            });
        }
    }
    let span_keys: BTreeSet<&String> = a.spans.keys().chain(b.spans.keys()).collect();
    for key in span_keys {
        let ca = a.spans.get(key).map(|s| s.count);
        let cb = b.spans.get(key).map(|s| s.count);
        if ca != cb {
            report.push(Finding {
                severity: Severity::Soft,
                key: format!("span-count:{key}"),
                baseline: ca,
                observed: cb,
                detail: "span count differs".to_string(),
            });
        }
        let ta = a.spans.get(key).map(|s| s.total).unwrap_or(0);
        let tb = b.spans.get(key).map(|s| s.total).unwrap_or(0);
        if rel_drift(ta, tb) > tol.soft_rel {
            report.push(Finding {
                severity: Severity::Soft,
                key: format!("span-micros:{key}"),
                baseline: Some(ta),
                observed: Some(tb),
                detail: format!("span timing differs by {:.0}%", rel_drift(ta, tb) * 100.0),
            });
        }
    }
    report.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jp_obs::Event;

    fn counter_event(seq: u64, key: (&str, &str), value: u64) -> Event {
        let mut e = Event::counter(key.0, key.1, value);
        e.seq = seq;
        e.thread = 1;
        e
    }

    fn span_event(seq: u64, key: (&str, &str), micros: u64) -> Event {
        let mut e = Event::span(key.0, key.1, micros);
        e.seq = seq;
        e.thread = 1;
        e
    }

    fn baseline_case(counters: &[(&str, u64)]) -> BaselineCase {
        let mut stats = StatsSnapshot::default();
        for (k, v) in counters {
            stats.counters.insert(k.to_string(), *v);
        }
        BaselineCase {
            family: "spider_10".into(),
            solver: "portfolio".into(),
            threads: 1,
            edges: 20,
            effective_cost: 24,
            wall_micros: 1000,
            stats,
        }
    }

    #[test]
    fn identical_runs_pass_with_no_findings() {
        let case = baseline_case(&[("exact.dp_states", 1000), ("par.steals", 3)]);
        let run = Analysis::from_events(&[
            counter_event(0, ("exact", "dp_states"), 1000),
            counter_event(1, ("par", "steals"), 3),
        ]);
        let report = check_against(&case, &run, &Tolerances::default());
        assert!(report.findings.is_empty(), "{}", report.render());
        assert!(!report.has_hard());
        assert!(report.render().contains("PASS"));
    }

    #[test]
    fn doubled_dp_states_is_a_hard_finding_naming_the_counter() {
        let case = baseline_case(&[("exact.dp_states", 1000)]);
        let run = Analysis::from_events(&[counter_event(0, ("exact", "dp_states"), 2000)]);
        let report = check_against(&case, &run, &Tolerances::default());
        assert!(report.has_hard());
        let hard = report
            .findings
            .iter()
            .find(|f| f.severity == Severity::Hard)
            .unwrap();
        assert_eq!(hard.key, "exact.dp_states");
        assert!(report.render().contains("FAIL"));
        assert!(report.render().contains("exact.dp_states"));
    }

    #[test]
    fn small_absolute_noise_on_tiny_counters_is_tolerated() {
        // 1 → 2 is +100% relative but only 1 absolute: within hard_abs.
        let case = baseline_case(&[("memo.miss", 1)]);
        let run = Analysis::from_events(&[counter_event(0, ("memo", "miss"), 2)]);
        let report = check_against(&case, &run, &Tolerances::default());
        assert!(!report.has_hard(), "{}", report.render());
    }

    #[test]
    fn scheduling_counters_never_fail_the_check() {
        let case = baseline_case(&[("par.steals", 2), ("portfolio.completed", 8)]);
        let run = Analysis::from_events(&[
            counter_event(0, ("par", "steals"), 40),
            counter_event(1, ("portfolio", "completed"), 3),
        ]);
        let report = check_against(&case, &run, &Tolerances::default());
        assert!(!report.has_hard(), "{}", report.render());
        assert!(!report.findings.is_empty(), "big drift is still reported");
    }

    #[test]
    fn answer_counters_admit_zero_tolerance() {
        let case = baseline_case(&[("portfolio.winner_cost", 24)]);
        let run = Analysis::from_events(&[counter_event(0, ("portfolio", "winner_cost"), 25)]);
        let report = check_against(&case, &run, &Tolerances::default());
        assert!(report.has_hard());
    }

    #[test]
    fn missing_work_counter_is_hard_missing_scheduling_is_soft() {
        let case = baseline_case(&[("exact.dp_states", 100), ("par.steals", 5)]);
        let run = Analysis::from_events(&[]);
        let report = check_against(&case, &run, &Tolerances::default());
        let by_key = |k: &str| {
            report
                .findings
                .iter()
                .find(|f| f.key == k)
                .map(|f| f.severity)
        };
        assert_eq!(by_key("exact.dp_states"), Some(Severity::Hard));
        assert_eq!(by_key("par.steals"), Some(Severity::Soft));
    }

    #[test]
    fn span_timings_are_soft_even_when_wildly_off() {
        let mut case = baseline_case(&[]);
        case.stats.span_counts.insert("exact.solve".into(), 1);
        case.stats.span_micros.insert("exact.solve".into(), 10);
        let run = Analysis::from_events(&[span_event(0, ("exact", "solve"), 10_000)]);
        let report = check_against(&case, &run, &Tolerances::default());
        assert!(!report.has_hard(), "{}", report.render());
        assert!(report
            .findings
            .iter()
            .any(|f| f.key == "span-micros:exact.solve"));
    }

    #[test]
    fn memory_keys_gate_only_large_allocation_regressions() {
        // +12% and ~1.2 MB over baseline: within mem_rel → not hard.
        let case = baseline_case(&[("mem.solver.bytes_peak", 10_000_000)]);
        let run =
            Analysis::from_events(&[counter_event(0, ("mem", "solver.bytes_peak"), 11_200_000)]);
        let report = check_against(&case, &run, &Tolerances::default());
        assert!(!report.has_hard(), "{}", report.render());

        // +50% and ~5 MB: past both gates → hard, naming the key.
        let run =
            Analysis::from_events(&[counter_event(0, ("mem", "solver.bytes_peak"), 15_000_000)]);
        let report = check_against(&case, &run, &Tolerances::default());
        assert!(report.has_hard(), "{}", report.render());
        assert!(report.render().contains("mem.solver.bytes_peak"));

        // +50% but only 3 bytes absolute: tiny counters never flap.
        let case = baseline_case(&[("mem.memo.allocs", 6)]);
        let run = Analysis::from_events(&[counter_event(0, ("mem", "memo.allocs"), 9)]);
        let report = check_against(&case, &run, &Tolerances::default());
        assert!(!report.has_hard(), "{}", report.render());
    }

    #[test]
    fn missing_memory_counter_is_soft_not_hard() {
        // The tracking allocator is feature-gated: a run without it must
        // not fail against a baseline that recorded allocation counters.
        let case = baseline_case(&[("mem.total.bytes_peak", 5_000_000)]);
        let run = Analysis::from_events(&[]);
        let report = check_against(&case, &run, &Tolerances::default());
        assert!(!report.has_hard(), "{}", report.render());
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].severity, Severity::Soft);
    }

    #[test]
    fn diff_analyses_is_soft_only() {
        let a = Analysis::from_events(&[counter_event(0, ("exact", "dp_states"), 10)]);
        let b = Analysis::from_events(&[counter_event(0, ("exact", "dp_states"), 99)]);
        let report = diff_analyses(&a, &b, &Tolerances::default());
        assert!(!report.has_hard());
        assert_eq!(report.findings.len(), 1);
    }

    #[test]
    fn baseline_file_round_trips() {
        let case = baseline_case(&[("exact.dp_states", 7)]);
        let json = format!(
            r#"[{{"family":"{}","solver":"{}","threads":{},"edges":{},"effective_cost":{},"wall_micros":{},"stats":{}}}]"#,
            case.family,
            case.solver,
            case.threads,
            case.edges,
            case.effective_cost,
            case.wall_micros,
            serde_json::to_string(&case.stats).unwrap()
        );
        let cases = load_baseline(&json).unwrap();
        assert_eq!(cases.len(), 1);
        assert!(find_case(&cases, "spider_10", "portfolio", 1).is_some());
        assert!(find_case(&cases, "spider_10", "portfolio", 2).is_none());
    }
}
