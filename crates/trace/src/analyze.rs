//! Aggregation and structure recovery over a parsed trace.
//!
//! [`Analysis::from_events`] turns a flat event list into:
//!
//! * per-counter totals and per-span **exact** histograms (every
//!   duration retained, percentiles by nearest rank — the same
//!   definition `--stats` uses via [`jp_obs::nearest_rank`]);
//! * per-thread summaries, including the `par.worker.start`/`stop`
//!   lifetime markers the utilization timeline is built from;
//! * the span tree: v2 spans *reserve* their `seq` when opened, so a
//!   parent's seq is always smaller than its children's and the tree
//!   can be rebuilt from `parent` links alone, across threads;
//! * seq-gap detection: seqs are allocated process-wide, so a missing
//!   range means either a filtered [`jp_obs::ScopedSink`] capture
//!   (expected — other threads kept allocating seqs that were never
//!   written) or genuine data loss. `trace summary` reports the ranges
//!   so the two are distinguishable instead of silently conflated.

use jp_obs::{nearest_rank, Event, EventKind};
use std::collections::{BTreeMap, BTreeSet};

/// Exact per-span-signal statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanStats {
    /// Number of span events.
    pub count: u64,
    /// Total microseconds.
    pub total: u64,
    /// Every duration, sorted ascending.
    pub values: Vec<u64>,
}

impl SpanStats {
    /// Nearest-rank median duration.
    pub fn p50(&self) -> u64 {
        nearest_rank(&self.values, 0.50)
    }

    /// Nearest-rank 95th-percentile duration.
    pub fn p95(&self) -> u64 {
        nearest_rank(&self.values, 0.95)
    }

    /// Nearest-rank 99th-percentile duration.
    pub fn p99(&self) -> u64 {
        nearest_rank(&self.values, 0.99)
    }

    /// Largest duration.
    pub fn max(&self) -> u64 {
        self.values.last().copied().unwrap_or(0)
    }
}

/// Per-thread event totals and lifetime window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ThreadSummary {
    /// Events stamped with this thread id.
    pub events: u64,
    /// Counter events.
    pub counters: u64,
    /// Span events.
    pub spans: u64,
    /// Total span microseconds recorded on this thread.
    pub span_micros: u64,
    /// Smallest `start` offset seen.
    pub first_start: u64,
    /// Largest event end (`start + value` for spans, `start` for
    /// counters).
    pub last_end: u64,
    /// `start` offset of this thread's `par.worker.start` marker, if it
    /// ran as a `jp-par` worker.
    pub worker_start: Option<u64>,
    /// `start` offset of the matching `par.worker.stop` marker.
    pub worker_stop: Option<u64>,
    /// Microseconds covered by this thread's *top-level* spans (spans
    /// whose parent is absent or lives on another thread) — nested spans
    /// are not double-counted.
    pub busy_micros: u64,
}

impl ThreadSummary {
    /// The observation window for utilization: the worker lifetime when
    /// the markers are present, otherwise first event to last event end.
    pub fn window_micros(&self) -> u64 {
        match (self.worker_start, self.worker_stop) {
            (Some(a), Some(b)) => b.saturating_sub(a),
            _ => self.last_end.saturating_sub(self.first_start),
        }
    }

    /// `busy_micros` over the window, in percent (0 for an empty
    /// window).
    pub fn utilization_pct(&self) -> u64 {
        let window = self.window_micros();
        if window == 0 {
            return 0;
        }
        self.busy_micros.saturating_mul(100) / window
    }
}

/// One reconstructed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// The span's reserved sequence number.
    pub seq: u64,
    /// Emitting thread.
    pub thread: u64,
    /// `component.name` key.
    pub key: String,
    /// Microsecond offset at which the span opened.
    pub start: u64,
    /// Elapsed microseconds.
    pub micros: u64,
    /// Parent span seq as emitted (may be an orphan link if the parent
    /// was filtered out of the capture).
    pub parent: Option<u64>,
    /// Indices into [`Analysis::nodes`] of child spans.
    pub children: Vec<usize>,
}

/// Everything recovered from one trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Analysis {
    /// Events analyzed.
    pub events: u64,
    /// Per-`component.name` counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Per-`component.name` span statistics.
    pub spans: BTreeMap<String, SpanStats>,
    /// Per-thread summaries.
    pub threads: BTreeMap<u64, ThreadSummary>,
    /// All spans, sorted by `seq` (topological: parents first).
    pub nodes: Vec<SpanNode>,
    /// Indices of spans with no in-trace parent.
    pub roots: Vec<usize>,
    /// Events whose `parent` seq is not an emitted span in this trace.
    /// Zero on any unfiltered capture; non-zero means the parent was
    /// scope-filtered or the file is incomplete.
    pub orphans: u64,
    /// Missing seq ranges `(from, to)` inclusive, with the thread of the
    /// nearest preceding event (the likeliest owner of the gap).
    pub seq_gaps: Vec<(u64, u64, u64)>,
    /// Total missing seqs across all gaps.
    pub missing_seqs: u64,
}

impl Analysis {
    /// Builds the full analysis from parsed events.
    pub fn from_events(events: &[Event]) -> Analysis {
        let mut a = Analysis {
            events: events.len() as u64,
            ..Analysis::default()
        };
        let span_seqs: BTreeSet<u64> = events
            .iter()
            .filter(|e| e.kind == EventKind::Span)
            .map(|e| e.seq)
            .collect();

        for e in events {
            let key = format!("{}.{}", e.component, e.name);
            let end = match e.kind {
                EventKind::Span => e.start.saturating_add(e.value),
                EventKind::Counter => e.start,
            };
            let t = a.threads.entry(e.thread).or_insert(ThreadSummary {
                first_start: e.start,
                ..ThreadSummary::default()
            });
            t.events += 1;
            t.first_start = t.first_start.min(e.start);
            t.last_end = t.last_end.max(end);
            match e.kind {
                EventKind::Counter => {
                    t.counters += 1;
                    if e.component == "par" && e.name == "worker.start" {
                        t.worker_start = Some(match t.worker_start {
                            Some(prev) => prev.min(e.start),
                            None => e.start,
                        });
                    }
                    if e.component == "par" && e.name == "worker.stop" {
                        t.worker_stop = Some(match t.worker_stop {
                            Some(prev) => prev.max(e.start),
                            None => e.start,
                        });
                    }
                    let c = a.counters.entry(key).or_insert(0);
                    *c = c.saturating_add(e.value);
                }
                EventKind::Span => {
                    t.spans += 1;
                    t.span_micros = t.span_micros.saturating_add(e.value);
                    let stats = a.spans.entry(key.clone()).or_default();
                    stats.count += 1;
                    stats.total = stats.total.saturating_add(e.value);
                    stats.values.push(e.value);
                    a.nodes.push(SpanNode {
                        seq: e.seq,
                        thread: e.thread,
                        key,
                        start: e.start,
                        micros: e.value,
                        parent: e.parent,
                        children: Vec::new(),
                    });
                }
            }
            if let Some(p) = e.parent {
                if !span_seqs.contains(&p) {
                    a.orphans += 1;
                }
            }
        }
        for stats in a.spans.values_mut() {
            stats.values.sort_unstable();
        }

        // Span tree: sort by seq (parents reserved theirs first, so this
        // is a topological order) and wire children through a seq→index
        // map.
        a.nodes.sort_by_key(|n| n.seq);
        let index_of: BTreeMap<u64, usize> = a
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.seq, i))
            .collect();
        let mut links: Vec<(usize, usize)> = Vec::new();
        for (i, node) in a.nodes.iter().enumerate() {
            match node.parent.and_then(|p| index_of.get(&p)).copied() {
                Some(parent_idx) if parent_idx != i => links.push((parent_idx, i)),
                _ => a.roots.push(i),
            }
        }
        for (parent_idx, child_idx) in links {
            if let Some(parent) = a.nodes.get_mut(parent_idx) {
                parent.children.push(child_idx);
            }
        }

        // Busy time per thread: top-level-per-thread spans only, so
        // nesting is not double-counted.
        for node in &a.nodes {
            let parent_on_same_thread = node
                .parent
                .and_then(|p| index_of.get(&p))
                .and_then(|&i| a.nodes.get(i))
                .is_some_and(|p| p.thread == node.thread);
            if !parent_on_same_thread {
                if let Some(t) = a.threads.get_mut(&node.thread) {
                    t.busy_micros = t.busy_micros.saturating_add(node.micros);
                }
            }
        }

        // Seq gaps: seqs are allocated process-wide and contiguously, so
        // any hole inside [min, max] is a seq that was reserved but
        // never written into this capture.
        let thread_of: BTreeMap<u64, u64> = events.iter().map(|e| (e.seq, e.thread)).collect();
        let mut prev: Option<(u64, u64)> = None;
        for (&seq, &thread) in &thread_of {
            if let Some((prev_seq, prev_thread)) = prev {
                if seq > prev_seq + 1 {
                    a.missing_seqs += seq - prev_seq - 1;
                    a.seq_gaps.push((prev_seq + 1, seq - 1, prev_thread));
                }
            }
            prev = Some((seq, thread));
        }
        a
    }

    /// Renders the human-readable summary (`trace summary`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "events {} · spans {} · threads {} · orphaned parents {}\n",
            self.events,
            self.nodes.len(),
            self.threads.len(),
            self.orphans
        ));
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (key, v) in &self.counters {
                out.push_str(&format!("  {key:<40} {v}\n"));
            }
        }
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            for (key, s) in &self.spans {
                out.push_str(&format!(
                    "  {key:<40} {} µs over {} call(s), p50 {} p95 {} p99 {} max {} µs\n",
                    s.total,
                    s.count,
                    s.p50(),
                    s.p95(),
                    s.p99(),
                    s.max()
                ));
            }
        }
        out.push_str("threads:\n");
        for (tid, t) in &self.threads {
            let role = if t.worker_start.is_some() {
                "worker"
            } else {
                "main  "
            };
            out.push_str(&format!(
                "  thread {tid:<3} {role} events {:<6} busy {} µs of {} µs ({}%)\n",
                t.events,
                t.busy_micros,
                t.window_micros(),
                t.utilization_pct()
            ));
        }
        if self.missing_seqs > 0 {
            out.push_str(&format!(
                "seq gaps: {} seq(s) missing in {} range(s) — reserved but never written \
                 (scope-filtered threads or spans dropped after the sink closed), \
                 or data loss if unexpected:\n",
                self.missing_seqs,
                self.seq_gaps.len()
            ));
            for (from, to, thread) in &self.seq_gaps {
                out.push_str(&format!(
                    "  seq {from}..={to} missing (after an event on thread {thread})\n"
                ));
            }
        } else {
            out.push_str("seq gaps: none (contiguous capture)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, thread: u64, kind: EventKind, key: (&str, &str), value: u64) -> Event {
        let mut e = match kind {
            EventKind::Counter => Event::counter(key.0, key.1, value),
            EventKind::Span => Event::span(key.0, key.1, value),
        };
        e.seq = seq;
        e.thread = thread;
        e
    }

    #[test]
    fn aggregates_counters_spans_and_threads() {
        let mut s1 = ev(0, 1, EventKind::Span, ("exact", "solve"), 100);
        s1.start = 10;
        let mut c = ev(1, 1, EventKind::Counter, ("exact", "dp_states"), 40);
        c.parent = Some(0);
        c.start = 20;
        let mut s2 = ev(2, 1, EventKind::Span, ("exact", "solve"), 30);
        s2.parent = Some(0);
        s2.start = 25;
        let a = Analysis::from_events(&[s1, c, s2]);
        assert_eq!(a.counters["exact.dp_states"], 40);
        let stats = &a.spans["exact.solve"];
        assert_eq!(stats.count, 2);
        assert_eq!(stats.total, 130);
        assert_eq!(stats.values, vec![30, 100]);
        assert_eq!(stats.max(), 100);
        assert_eq!(a.orphans, 0);
        // Nested span is not double-counted into busy time.
        assert_eq!(a.threads[&1].busy_micros, 100);
        assert_eq!(a.roots.len(), 1);
        let root = &a.nodes[a.roots[0]];
        assert_eq!(root.children.len(), 1);
    }

    #[test]
    fn orphaned_parents_are_counted_and_rooted() {
        let mut s = ev(5, 1, EventKind::Span, ("bb", "search"), 10);
        s.parent = Some(999);
        let a = Analysis::from_events(&[s]);
        assert_eq!(a.orphans, 1);
        assert_eq!(a.roots.len(), 1);
    }

    #[test]
    fn seq_gaps_are_reported_with_the_preceding_thread() {
        let events = [
            ev(0, 1, EventKind::Counter, ("t", "a"), 1),
            ev(1, 2, EventKind::Counter, ("t", "b"), 1),
            ev(5, 1, EventKind::Counter, ("t", "c"), 1),
            ev(9, 1, EventKind::Counter, ("t", "d"), 1),
        ];
        let a = Analysis::from_events(&events);
        assert_eq!(a.missing_seqs, 6);
        assert_eq!(a.seq_gaps, vec![(2, 4, 2), (6, 8, 1)]);
        assert!(a.render().contains("seq 2..=4 missing"));
    }

    #[test]
    fn worker_markers_define_the_utilization_window() {
        let mut start = ev(0, 3, EventKind::Counter, ("par", "worker.start"), 1);
        start.start = 100;
        let mut task = ev(1, 3, EventKind::Span, ("exact", "solve"), 50);
        task.start = 110;
        let mut stop = ev(2, 3, EventKind::Counter, ("par", "worker.stop"), 1);
        stop.start = 200;
        let a = Analysis::from_events(&[start, task, stop]);
        let t = &a.threads[&3];
        assert_eq!(t.window_micros(), 100);
        assert_eq!(t.busy_micros, 50);
        assert_eq!(t.utilization_pct(), 50);
        assert!(a.render().contains("worker"));
    }
}
