//! Per-request reconstruction: everything one serve request did,
//! across threads, with a blame breakdown.
//!
//! jp-serve stamps every jp-obs event a request causes with the
//! client-minted tracing id (`Event::request`): the handler's
//! `serve.wire` span, the worker's `serve.request` span and
//! `serve.queue_wait_us` counter, and everything the solver ladder
//! emits underneath — memo probes, wcoj operators, exact/bb search
//! spans — even when the job hops from the handler thread through the
//! dispatcher onto a jp-par worker. This module inverts that: given a
//! trace (a full `--trace` capture or a server's tail-sampled xray
//! file) and an id, it rebuilds the request's cross-thread span tree,
//! walks its critical path, and attributes the latency to five blame
//! buckets:
//!
//! * **queue** — handler-enqueue to execution-start, from the
//!   `serve.queue_wait_us` counter (time spent waiting, not working);
//! * **memo** — self-time of `memo.*` spans (warm-store probes);
//! * **wcoj** — self-time of `wcoj.*` spans (multiway join operators);
//! * **wire** — `serve.wire` span time (response serialization and
//!   socket write);
//! * **solve** — self-time of every other span in the request,
//!   including the `serve.request` root's own time: solver work not
//!   otherwise attributed.
//!
//! Self-times decompose exactly (a span's children are subtracted
//! from it), so `memo + wcoj + solve` equals the `serve.request`
//! total whenever the capture is complete — and completeness is
//! checked, not assumed: an event whose `parent` seq resolves neither
//! inside the request nor anywhere in the surrounding trace is an
//! **orphan**, and a request with orphans (or no root span) is
//! reported `INCOMPLETE`. `jp trace request all --min-complete 95`
//! turns that into a CI gate.

use crate::analyze::Analysis;
use jp_obs::{Event, EventKind};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// One span on the request's critical path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PathStep {
    /// The span's seq.
    pub seq: u64,
    /// Emitting thread — consecutive steps with different threads are
    /// the cross-thread handoffs.
    pub thread: u64,
    /// `component.name` key.
    pub key: String,
    /// Microsecond offset at which the span opened.
    pub start: u64,
    /// Elapsed microseconds.
    pub micros: u64,
    /// Nesting depth along the path (root = 0).
    pub depth: u64,
}

/// Where one request's latency went.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct Blame {
    /// Admission-to-execution wait (`serve.queue_wait_us`).
    pub queue_us: u64,
    /// Self-time of solver-side spans not attributed elsewhere,
    /// including the `serve.request` root's own time.
    pub solve_us: u64,
    /// Self-time of warm-store (`memo.*`) spans.
    pub memo_us: u64,
    /// Self-time of multiway-join (`wcoj.*`) spans.
    pub wcoj_us: u64,
    /// Response serialization + socket write (`serve.wire`).
    pub wire_us: u64,
}

impl Blame {
    /// Total attributed microseconds.
    pub fn total(&self) -> u64 {
        self.queue_us
            .saturating_add(self.solve_us)
            .saturating_add(self.memo_us)
            .saturating_add(self.wcoj_us)
            .saturating_add(self.wire_us)
    }
}

/// Everything reconstructed for one request id.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RequestTrace {
    /// The tracing id.
    pub request: u64,
    /// Events stamped with it.
    pub events: u64,
    /// Span events among them.
    pub spans: u64,
    /// Counter events among them.
    pub counters: u64,
    /// Distinct threads the request touched.
    pub threads: Vec<u64>,
    /// Duration of the `serve.request` root span, when present.
    pub total_us: u64,
    /// The blame breakdown.
    pub blame: Blame,
    /// Request events whose `parent` seq resolves neither inside the
    /// request nor anywhere in the surrounding trace.
    pub orphans: u64,
    /// Whether a `serve.request` root was found.
    pub has_root: bool,
    /// The cross-thread critical path, root first.
    pub critical_path: Vec<PathStep>,
}

impl RequestTrace {
    /// Zero orphans and a root to hang the reconstruction on.
    pub fn complete(&self) -> bool {
        self.orphans == 0 && self.has_root
    }

    /// Renders the human-readable report (`jp trace request <id>`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "request {}: {} event(s) ({} spans, {} counters) on {} thread(s) — {}\n",
            self.request,
            self.events,
            self.spans,
            self.counters,
            self.threads.len(),
            if self.complete() {
                "COMPLETE"
            } else {
                "INCOMPLETE"
            }
        ));
        if !self.has_root {
            out.push_str("  no serve.request root span in this capture\n");
        }
        if self.orphans > 0 {
            out.push_str(&format!(
                "  {} orphaned event(s): parent spans missing from the capture\n",
                self.orphans
            ));
        }
        let total = self.total_us.max(1);
        out.push_str(&format!(
            "blame (total {} µs in serve.request, +{} µs queue, +{} µs wire):\n",
            self.total_us, self.blame.queue_us, self.blame.wire_us
        ));
        for (label, us) in [
            ("queue", self.blame.queue_us),
            ("solve", self.blame.solve_us),
            ("memo", self.blame.memo_us),
            ("wcoj", self.blame.wcoj_us),
            ("wire", self.blame.wire_us),
        ] {
            out.push_str(&format!(
                "  {label:<6} {us:>10} µs  ({:>3}% of solve window)\n",
                us.saturating_mul(100) / total
            ));
        }
        out.push_str("critical path:\n");
        for step in &self.critical_path {
            let indent = "  ".repeat((step.depth + 1) as usize);
            out.push_str(&format!(
                "{indent}{key:<32} {micros:>8} µs  @ {start} µs, thread {thread} (seq {seq})\n",
                key = step.key,
                micros = step.micros,
                start = step.start,
                thread = step.thread,
                seq = step.seq
            ));
        }
        out
    }
}

/// Summary over every request in a trace (`jp trace request all`).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct RequestSummary {
    /// Requests seen (distinct stamped ids).
    pub requests: u64,
    /// Requests whose reconstruction is complete (zero orphans and a
    /// `serve.request` root).
    pub complete: u64,
    /// `complete / requests` in percent (100 when empty).
    pub complete_pct: u64,
    /// Per-request reconstructions, slowest first.
    pub traces: Vec<RequestTrace>,
}

impl RequestSummary {
    /// Renders the all-requests table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} request(s), {} complete ({}%)\n",
            self.requests, self.complete, self.complete_pct
        ));
        for t in &self.traces {
            out.push_str(&format!(
                "  request {:<22} {:>8} µs  queue {:>6} solve {:>6} memo {:>6} wcoj {:>6} wire {:>6}  {}\n",
                t.request,
                t.total_us,
                t.blame.queue_us,
                t.blame.solve_us,
                t.blame.memo_us,
                t.blame.wcoj_us,
                t.blame.wire_us,
                if t.complete() { "ok" } else { "INCOMPLETE" }
            ));
        }
        out
    }
}

/// Reconstructs one request from a trace. Returns `None` when no
/// event is stamped with `id`.
pub fn reconstruct(events: &[Event], id: u64) -> Option<RequestTrace> {
    let all_span_seqs: BTreeSet<u64> = events
        .iter()
        .filter(|e| e.kind == EventKind::Span)
        .map(|e| e.seq)
        .collect();
    let mine: Vec<&Event> = events.iter().filter(|e| e.request == Some(id)).collect();
    if mine.is_empty() {
        return None;
    }
    Some(build(id, &mine, &all_span_seqs))
}

/// Reconstructs every stamped request in the trace, slowest first.
pub fn reconstruct_all(events: &[Event]) -> RequestSummary {
    let all_span_seqs: BTreeSet<u64> = events
        .iter()
        .filter(|e| e.kind == EventKind::Span)
        .map(|e| e.seq)
        .collect();
    let mut by_id: BTreeMap<u64, Vec<&Event>> = BTreeMap::new();
    for e in events {
        if let Some(id) = e.request {
            by_id.entry(id).or_default().push(e);
        }
    }
    let mut traces: Vec<RequestTrace> = by_id
        .iter()
        .map(|(&id, mine)| build(id, mine, &all_span_seqs))
        .collect();
    traces.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.request.cmp(&b.request)));
    let requests = traces.len() as u64;
    let complete = traces.iter().filter(|t| t.complete()).count() as u64;
    RequestSummary {
        requests,
        complete,
        complete_pct: complete
            .saturating_mul(100)
            .checked_div(requests)
            .unwrap_or(100),
        traces,
    }
}

/// Blame bucket of one span key's *self* time.
fn bucket_of(key: &str) -> fn(&mut Blame) -> &mut u64 {
    if key == "serve.wire" {
        |b| &mut b.wire_us
    } else if key.starts_with("memo.") {
        |b| &mut b.memo_us
    } else if key.starts_with("wcoj.") {
        |b| &mut b.wcoj_us
    } else {
        |b| &mut b.solve_us
    }
}

fn build(id: u64, mine: &[&Event], all_span_seqs: &BTreeSet<u64>) -> RequestTrace {
    let owned: Vec<Event> = mine.iter().map(|e| (*e).clone()).collect();
    // Reuse the span-tree machinery: within one request the parent
    // links form the same reserved-seq topology as a full trace.
    let analysis = Analysis::from_events(&owned);

    let mut trace = RequestTrace {
        request: id,
        events: mine.len() as u64,
        spans: 0,
        counters: 0,
        threads: Vec::new(),
        total_us: 0,
        blame: Blame::default(),
        orphans: 0,
        has_root: false,
        critical_path: Vec::new(),
    };
    let mut threads: BTreeSet<u64> = BTreeSet::new();
    for e in mine {
        threads.insert(e.thread);
        match e.kind {
            EventKind::Span => trace.spans += 1,
            EventKind::Counter => trace.counters += 1,
        }
        // Orphan = the parent resolves nowhere: not to a span of this
        // request and not to any span in the surrounding trace. A
        // parent outside the request (the dispatcher's par.run over a
        // whole batch) is a normal cross-request boundary, not a hole.
        if let Some(p) = e.parent {
            if !all_span_seqs.contains(&p) {
                trace.orphans += 1;
            }
        }
        if e.kind == EventKind::Counter && e.component == "serve" && e.name == "queue_wait_us" {
            trace.blame.queue_us = trace.blame.queue_us.saturating_add(e.value);
        }
    }
    trace.threads = threads.into_iter().collect();

    // Self-time blame: subtract in-request children from each span.
    for node in &analysis.nodes {
        let children: u64 = node
            .children
            .iter()
            .filter_map(|&c| analysis.nodes.get(c))
            .fold(0u64, |acc, c| acc.saturating_add(c.micros));
        let self_us = node.micros.saturating_sub(children);
        let slot = bucket_of(&node.key);
        *slot(&mut trace.blame) = slot(&mut trace.blame).saturating_add(self_us);
    }

    // The root: the request's serve.request span (the solve window).
    let root_idx = analysis
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.key == "serve.request")
        .max_by_key(|(_, n)| n.micros)
        .map(|(i, _)| i);
    if let Some(ri) = root_idx {
        trace.has_root = true;
        trace.total_us = analysis.nodes.get(ri).map_or(0, |n| n.micros);
        // Critical path: from the root, repeatedly descend into the
        // child that *finishes last* — the span that was still running
        // when its parent closed, i.e. the one gating completion.
        let mut at = ri;
        let mut depth = 0u64;
        let mut hops = 0usize;
        while let Some(node) = analysis.nodes.get(at) {
            trace.critical_path.push(PathStep {
                seq: node.seq,
                thread: node.thread,
                key: node.key.clone(),
                start: node.start,
                micros: node.micros,
                depth,
            });
            hops += 1;
            if hops > analysis.nodes.len() {
                break; // defensive: a cycle cannot occur (seqs strictly grow), but never loop
            }
            let next = node
                .children
                .iter()
                .filter(|&&c| c != at)
                .max_by_key(|&&c| {
                    analysis
                        .nodes
                        .get(c)
                        .map_or(0, |n| n.start.saturating_add(n.micros))
                })
                .copied();
            match next {
                Some(n) => {
                    at = n;
                    depth += 1;
                }
                None => break,
            }
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(seq: u64, thread: u64, key: (&str, &str), micros: u64) -> Event {
        let mut e = Event::span(key.0, key.1, micros);
        e.seq = seq;
        e.thread = thread;
        e
    }

    fn stamp(mut e: Event, request: u64, parent: Option<u64>, start: u64) -> Event {
        e.request = Some(request);
        e.parent = parent;
        e.start = start;
        e
    }

    /// A two-request trace shaped like a real serve run: an unstamped
    /// par.run batch span, and per request a serve.request root with a
    /// memo probe + solver span under it, a queue-wait counter, and a
    /// handler-side wire span on another thread.
    fn serve_like_trace() -> Vec<Event> {
        let mut par_run = span(10, 2, ("par", "run"), 900);
        par_run.start = 100;
        let mut c1 = Event::counter("serve", "queue_wait_us", 40);
        c1 = stamp(c1, 71, Some(11), 210);
        c1.seq = 12;
        c1.thread = 2;
        let mut c2 = Event::counter("serve", "queue_wait_us", 15);
        c2 = stamp(c2, 72, Some(21), 510);
        c2.seq = 22;
        c2.thread = 3;
        vec![
            par_run,
            // request 71: 300 µs total = 50 memo + 200 exact + 50 self
            stamp(span(11, 2, ("serve", "request"), 300), 71, Some(10), 200),
            c1,
            stamp(span(13, 2, ("memo", "probe"), 50), 71, Some(11), 220),
            stamp(span(14, 2, ("exact", "solve"), 200), 71, Some(11), 280),
            stamp(span(15, 1, ("serve", "wire"), 25), 71, None, 520),
            // request 72: 100 µs total, all solver self-time
            stamp(span(21, 3, ("serve", "request"), 100), 72, Some(10), 500),
            c2,
            stamp(span(23, 1, ("serve", "wire"), 10), 72, None, 620),
        ]
    }

    #[test]
    fn blame_decomposes_the_request_exactly() {
        let events = serve_like_trace();
        let t = reconstruct(&events, 71).expect("request 71 exists");
        assert!(t.complete(), "{t:?}");
        assert_eq!(t.total_us, 300);
        assert_eq!(t.blame.queue_us, 40);
        assert_eq!(t.blame.memo_us, 50);
        assert_eq!(t.blame.solve_us, 250, "exact.solve 200 + root self 50");
        assert_eq!(t.blame.wire_us, 25);
        assert_eq!(t.blame.wcoj_us, 0);
        // memo + solve == serve.request total: exact decomposition
        assert_eq!(t.blame.memo_us + t.blame.solve_us, t.total_us);
        assert_eq!(t.threads, vec![1, 2]);
        assert_eq!(t.events, 5);
    }

    #[test]
    fn the_critical_path_descends_into_the_latest_finishing_child() {
        let events = serve_like_trace();
        let t = reconstruct(&events, 71).expect("request 71 exists");
        let keys: Vec<&str> = t.critical_path.iter().map(|s| s.key.as_str()).collect();
        // exact.solve ends at 480, memo.probe at 270 — the path takes
        // the solver branch
        assert_eq!(keys, vec!["serve.request", "exact.solve"]);
        assert!(t.render().contains("COMPLETE"));
        assert!(t.render().contains("exact.solve"));
    }

    #[test]
    fn a_parent_outside_the_request_but_in_the_trace_is_not_an_orphan() {
        let events = serve_like_trace();
        // both requests parent under the unstamped par.run batch span
        let t71 = reconstruct(&events, 71).expect("request 71");
        let t72 = reconstruct(&events, 72).expect("request 72");
        assert_eq!((t71.orphans, t72.orphans), (0, 0));
    }

    #[test]
    fn a_missing_parent_span_is_an_orphan_and_incomplete() {
        let mut events = serve_like_trace();
        events.retain(|e| e.seq != 10); // drop the par.run span
        let t = reconstruct(&events, 71).expect("request 71");
        assert_eq!(t.orphans, 1);
        assert!(!t.complete());
        assert!(t.render().contains("INCOMPLETE"));
    }

    #[test]
    fn the_all_summary_counts_completeness_and_sorts_by_latency() {
        let events = serve_like_trace();
        let s = reconstruct_all(&events);
        assert_eq!((s.requests, s.complete, s.complete_pct), (2, 2, 100));
        let order: Vec<u64> = s.traces.iter().map(|t| t.request).collect();
        assert_eq!(order, vec![71, 72], "slowest first");
        assert!(s.render().contains("2 request(s), 2 complete (100%)"));
    }

    #[test]
    fn unknown_ids_and_unstamped_traces_reconstruct_to_nothing() {
        let events = serve_like_trace();
        assert!(reconstruct(&events, 999).is_none());
        let unstamped = [span(1, 1, ("exact", "solve"), 10)];
        let s = reconstruct_all(&unstamped);
        assert_eq!((s.requests, s.complete_pct), (0, 100));
    }

    #[test]
    fn a_rootless_request_renders_incomplete_with_the_reason() {
        let events = [stamp(span(5, 1, ("serve", "wire"), 10), 9, None, 0)];
        let t = reconstruct(&events, 9).expect("request 9");
        assert!(!t.has_root);
        assert!(!t.complete());
        assert!(t.render().contains("no serve.request root"));
    }
}
