#![forbid(unsafe_code)]
//! `jp-trace` (jp-lens) — analysis over the `jp-obs` event stream.
//!
//! The paper argues join complexity in *counted work* — pebble
//! placements, Held–Karp DP states, branch-and-bound nodes — and
//! `jp-obs` already writes exactly those signals as JSONL. This crate
//! closes the loop from *emit* to *gate*: it reads traces back,
//! reconstructs what the solvers did, and diffs runs against the
//! committed `BENCH_pebbling.json` baseline so a regression in
//! `exact.dp_states` or the memo hit-rate fails CI instead of waiting
//! for someone to eyeball a 2700-line JSON file.
//!
//! # Architecture
//!
//! * [`reader`] — a streaming JSONL reader with the same discipline as
//!   the memo loader: a truncated, corrupt, or future-schema line is a
//!   *per-line skip with a counted reason*, never a panic. See
//!   [`ReadReport`].
//! * [`analyze`] — per-counter totals, per-span exact histograms with
//!   p50/p95/max (nearest-rank, shared with `--stats` via
//!   [`jp_obs::nearest_rank`]), per-thread summaries, span-tree
//!   reconstruction from the v2 `parent` links, seq-gap detection, and
//!   a worker-utilization timeline from the `par.worker.start`/`stop`
//!   markers. See [`Analysis`].
//! * [`flame`] — folded-stack flamegraph export (`inferno`-compatible
//!   text, one `frame;frame;frame value` line per stack; no rendering
//!   dependency).
//! * [`diff`] — the baseline comparator: per-counter noise tolerances
//!   with hard/soft severity classes ([`Tolerances`] documents the
//!   defaults), plus a symmetric run-vs-run diff.
//! * [`request`] — per-request reconstruction over the serve tracing
//!   ids ([`jp_obs::Event::request`]): the cross-thread critical path
//!   of one request and a queue/solve/memo/wcoj/wire blame breakdown,
//!   with a completeness gate for CI.
//!
//! The crate is std-only, `#![forbid(unsafe_code)]`, and covered by the
//! workspace audit's panic-freedom rule.

pub mod analyze;
pub mod diff;
pub mod flame;
pub mod pulse;
pub mod reader;
pub mod request;

pub use analyze::{Analysis, SpanNode, SpanStats, ThreadSummary};
pub use diff::{BaselineCase, DiffReport, Finding, Severity, Tolerances};
pub use flame::folded_stacks;
pub use pulse::{pulse_snapshots, PulseSnapshot};
pub use reader::{parse_trace, read_trace, ReadReport};
pub use request::{reconstruct, reconstruct_all, Blame, PathStep, RequestSummary, RequestTrace};
