//! Reader for jp-pulse sample files.
//!
//! A pulse file is JSONL in the jp-obs schema-v2 shape — kind `Counter`,
//! component `"pulse"` — so [`crate::reader`] parses it unchanged (and
//! with the same damage tolerance: a torn tail line is a counted skip).
//! This module adds the one pulse-specific convention on top: a line
//! named `"snapshot"` is a *marker* whose value is the 1-based snapshot
//! ordinal and whose `start` is the microsecond offset since the sampler
//! started; every following pulse line until the next marker belongs to
//! that snapshot.

use std::collections::BTreeMap;

use jp_obs::Event;

/// One sampler snapshot: the marker plus its sample lines.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PulseSnapshot {
    /// 1-based snapshot ordinal from the marker line.
    pub ordinal: u64,
    /// Microseconds since the sampler started, from the marker line.
    pub at_micros: u64,
    /// Sample name → value, deterministically ordered.
    pub samples: BTreeMap<String, u64>,
}

/// Groups the pulse lines of a parsed trace into snapshots, in file
/// order. Non-pulse events (a pulse file appended to a regular trace,
/// or vice versa) are ignored; sample lines before the first marker are
/// dropped as torn-head damage, mirroring the reader's skip discipline.
pub fn pulse_snapshots(events: &[Event]) -> Vec<PulseSnapshot> {
    let mut snapshots: Vec<PulseSnapshot> = Vec::new();
    for event in events {
        if event.component != "pulse" {
            continue;
        }
        if event.name == "snapshot" {
            snapshots.push(PulseSnapshot {
                ordinal: event.value,
                at_micros: event.start,
                samples: BTreeMap::new(),
            });
        } else if let Some(current) = snapshots.last_mut() {
            current.samples.insert(event.name.clone(), event.value);
        }
    }
    snapshots
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::parse_trace;

    fn pulse_line(seq: u64, name: &str, value: u64, start: u64) -> String {
        let mut event = Event::counter("pulse", name, value);
        event.seq = seq;
        event.thread = 1;
        event.start = start;
        serde_json::to_string(&event).unwrap()
    }

    #[test]
    fn snapshots_group_between_markers() {
        let text = [
            pulse_line(1, "snapshot", 1, 100),
            pulse_line(2, "memo.hit", 5, 100),
            pulse_line(3, "memo.miss", 2, 100),
            pulse_line(4, "snapshot", 2, 200),
            pulse_line(5, "memo.hit", 9, 200),
        ]
        .join("\n");
        let (events, _report) = parse_trace(&text);
        assert_eq!(events.len(), 5);
        let snaps = pulse_snapshots(&events);
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].ordinal, 1);
        assert_eq!(snaps[0].at_micros, 100);
        assert_eq!(snaps[0].samples.get("memo.hit"), Some(&5));
        assert_eq!(snaps[0].samples.get("memo.miss"), Some(&2));
        assert_eq!(snaps[1].ordinal, 2);
        assert_eq!(snaps[1].samples.get("memo.hit"), Some(&9));
        assert_eq!(snaps[1].samples.get("memo.miss"), None);
    }

    #[test]
    fn torn_head_and_foreign_components_are_dropped() {
        let mut other = Event::counter("memo", "hit", 1);
        other.seq = 2;
        let text = [
            pulse_line(1, "memo.hit", 3, 50), // sample before any marker
            serde_json::to_string(&other).unwrap(),
            pulse_line(3, "snapshot", 1, 100),
            pulse_line(4, "memo.hit", 7, 100),
        ]
        .join("\n");
        let (events, _report) = parse_trace(&text);
        let snaps = pulse_snapshots(&events);
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].samples.len(), 1);
        assert_eq!(snaps[0].samples.get("memo.hit"), Some(&7));
    }

    #[test]
    fn empty_input_yields_no_snapshots() {
        assert!(pulse_snapshots(&[]).is_empty());
    }
}
