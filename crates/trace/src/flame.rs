//! Folded-stack flamegraph export.
//!
//! Emits the text format the standard flamegraph toolchain consumes
//! (`flamegraph.pl`, `inferno-flamegraph`, speedscope): one line per
//! distinct stack, semicolon-separated frames, a space, and a sample
//! value. The value here is **self time in microseconds** — a span's
//! duration minus its children's — so frame widths decompose exactly
//! and no rendering dependency is needed in-repo:
//!
//! ```text
//! thread-2;portfolio.race;par.run;exact.solve 812
//! ```
//!
//! The leading frame is the span's *own* thread, so a 4-thread
//! portfolio run fans out into four towers while cross-thread `parent`
//! links still show each task under the `par.run`/`portfolio.race`
//! spans that scheduled it.

use crate::analyze::Analysis;
use std::collections::BTreeMap;

/// Folded stacks, one `(stack, self_micros)` pair per distinct stack,
/// sorted by stack string; zero-valued stacks are dropped.
pub fn folded_stacks(analysis: &Analysis) -> Vec<(String, u64)> {
    let index_of: BTreeMap<u64, usize> = analysis
        .nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.seq, i))
        .collect();
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for node in &analysis.nodes {
        let children_micros: u64 = node
            .children
            .iter()
            .filter_map(|&c| analysis.nodes.get(c))
            .fold(0u64, |acc, c| acc.saturating_add(c.micros));
        let self_micros = node.micros.saturating_sub(children_micros);
        if self_micros == 0 {
            continue;
        }
        // Walk ancestors root-ward; seqs strictly decrease along parent
        // links (spans reserve their seq before any child can), so this
        // terminates even on adversarial input.
        let mut frames = vec![node.key.clone()];
        let mut current = node;
        while let Some(parent) = current
            .parent
            .and_then(|p| index_of.get(&p))
            .and_then(|&i| analysis.nodes.get(i))
            .filter(|p| p.seq < current.seq)
        {
            frames.push(parent.key.clone());
            current = parent;
        }
        frames.push(format!("thread-{}", node.thread));
        frames.reverse();
        let slot = folded.entry(frames.join(";")).or_insert(0);
        *slot = slot.saturating_add(self_micros);
    }
    folded.into_iter().collect()
}

/// Renders folded stacks as the newline-terminated text file the
/// flamegraph tools read.
pub fn render(analysis: &Analysis) -> String {
    let mut out = String::new();
    for (stack, value) in folded_stacks(analysis) {
        out.push_str(&format!("{stack} {value}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jp_obs::Event;

    fn span(seq: u64, thread: u64, key: (&str, &str), micros: u64, parent: Option<u64>) -> Event {
        let mut e = Event::span(key.0, key.1, micros);
        e.seq = seq;
        e.thread = thread;
        e.parent = parent;
        e
    }

    #[test]
    fn stacks_nest_and_self_time_decomposes() {
        let events = [
            span(0, 1, ("portfolio", "race"), 100, None),
            span(1, 1, ("par", "run"), 90, Some(0)),
            span(2, 2, ("exact", "solve"), 40, Some(1)),
        ];
        let a = Analysis::from_events(&events);
        let stacks = folded_stacks(&a);
        let text = render(&a);
        assert_eq!(
            stacks,
            vec![
                ("thread-1;portfolio.race".to_string(), 10),
                ("thread-1;portfolio.race;par.run".to_string(), 50),
                (
                    "thread-2;portfolio.race;par.run;exact.solve".to_string(),
                    40
                ),
            ]
        );
        assert!(text.ends_with('\n'));
        // Total self time equals the root's duration.
        assert_eq!(stacks.iter().map(|(_, v)| v).sum::<u64>(), 100);
    }

    #[test]
    fn zero_self_time_frames_are_dropped_but_remain_as_prefixes() {
        let events = [
            span(0, 1, ("a", "outer"), 10, None),
            span(1, 1, ("a", "inner"), 10, Some(0)),
        ];
        let a = Analysis::from_events(&events);
        let stacks = folded_stacks(&a);
        assert_eq!(stacks, vec![("thread-1;a.outer;a.inner".to_string(), 10)]);
    }

    #[test]
    fn orphan_parents_truncate_the_stack_gracefully() {
        let events = [span(7, 3, ("bb", "search"), 5, Some(999))];
        let a = Analysis::from_events(&events);
        assert_eq!(
            folded_stacks(&a),
            vec![("thread-3;bb.search".to_string(), 5)]
        );
    }
}
