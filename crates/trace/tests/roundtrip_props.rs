//! Property tests for jp-lens over generated traces.
//!
//! Two invariants the rest of the toolbox leans on:
//!
//! * **Byte-identical round trip** — `emit → parse → re-emit` reproduces
//!   the input exactly on well-formed traces. This is what makes the
//!   reader safe to put in a pipeline: it never loses or reorders
//!   information it understood.
//! * **No orphans on well-formed parentage** — whenever every `parent`
//!   references an earlier span in the same trace (the shape the live
//!   emitter guarantees via seq reservation), the analyzer reports zero
//!   orphaned parent links.
//! * **`request` is an additive field** — traces without it round-trip
//!   byte-identically (so the stamp costs nothing when absent), and
//!   stamped traces still parse under a reader that predates the field
//!   (unknown keys are ignored, never a hard error).

use jp_obs::{Event, EventKind};
use jp_trace::{parse_trace, Analysis};
use proptest::collection::vec;
use proptest::prelude::*;

const COMPONENTS: [&str; 5] = ["exact", "bb", "portfolio", "par", "approx.dfs_partition"];
const NAMES: [&str; 5] = [
    "solve",
    "dp_states",
    "race",
    "worker.start",
    "nodes_expanded",
];

/// Generates a well-formed trace: distinct increasing seqs, and every
/// `parent` pointing at an earlier *span* event of the trace.
fn arb_events() -> impl Strategy<Value = Vec<Event>> {
    vec(
        (
            1u64..=8,     // thread
            0u8..2,       // kind selector
            0usize..5,    // component selector
            0usize..5,    // name selector
            any::<u64>(), // value
            any::<u64>(), // entropy for start + parent choice
        ),
        0..40,
    )
    .prop_map(|rows| {
        let mut events = Vec::new();
        let mut span_seqs: Vec<u64> = Vec::new();
        for (i, (thread, kind, ci, ni, value, entropy)) in rows.into_iter().enumerate() {
            let seq = (i as u64) * 2 + entropy % 2; // distinct, increasing
            let kind = if kind == 0 {
                EventKind::Counter
            } else {
                EventKind::Span
            };
            // roughly half the events nest under some earlier span
            let parent = if entropy % 4 < 2 && !span_seqs.is_empty() {
                span_seqs
                    .get((entropy / 4) as usize % span_seqs.len())
                    .copied()
            } else {
                None
            };
            if kind == EventKind::Span {
                span_seqs.push(seq);
            }
            // roughly a third of the events carry a serve tracing id
            let request = if entropy % 3 == 0 {
                Some(1 + (entropy >> 8) % 5)
            } else {
                None
            };
            events.push(Event {
                seq,
                thread,
                kind,
                component: COMPONENTS[ci].to_string(),
                name: NAMES[ni].to_string(),
                value,
                start: entropy >> 32,
                parent,
                request,
            });
        }
        events
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn emit_parse_reemit_is_byte_identical(events in arb_events()) {
        let text: String = events
            .iter()
            .map(|e| serde_json::to_string(e).unwrap() + "\n")
            .collect();
        let (parsed, report) = parse_trace(&text);
        prop_assert_eq!(report.skipped(), 0, "skips: {:?}", report.samples);
        prop_assert_eq!(&parsed, &events);
        let reemitted: String = parsed
            .iter()
            .map(|e| serde_json::to_string(e).unwrap() + "\n")
            .collect();
        prop_assert_eq!(reemitted, text);
    }

    #[test]
    fn traces_without_the_request_field_round_trip_byte_identically(events in arb_events()) {
        // strip every stamp: a pre-serve trace must serialize with no
        // `request` key at all, and survive the pipeline unchanged
        let mut events = events;
        for e in &mut events {
            e.request = None;
        }
        let text: String = events
            .iter()
            .map(|e| serde_json::to_string(e).unwrap() + "\n")
            .collect();
        prop_assert!(!text.contains("\"request\""), "absent means omitted, not null");
        let (parsed, report) = parse_trace(&text);
        prop_assert_eq!(report.skipped(), 0, "skips: {:?}", report.samples);
        let reemitted: String = parsed
            .iter()
            .map(|e| serde_json::to_string(e).unwrap() + "\n")
            .collect();
        prop_assert_eq!(reemitted, text);
    }

    #[test]
    fn stamped_traces_parse_under_a_reader_that_predates_the_field(events in arb_events()) {
        // A pre-request reader sees `request` as just another unknown
        // key — its field-lookup deserializer skips what it doesn't
        // know. Simulate that exact path by renaming the key to one no
        // reader knows: parsing must still succeed line for line, with
        // every *other* field intact and no hard error anywhere.
        let text: String = events
            .iter()
            .map(|e| serde_json::to_string(e).unwrap() + "\n")
            .collect();
        let aged = text.replace("\"request\":", "\"zz_unknown\":");
        let (parsed, report) = parse_trace(&aged);
        prop_assert_eq!(report.skipped(), 0, "skips: {:?}", report.samples);
        prop_assert_eq!(parsed.len(), events.len());
        for (old, new) in events.iter().zip(parsed.iter()) {
            let mut expect = old.clone();
            expect.request = None; // the one field the old reader drops
            prop_assert_eq!(&expect, new);
        }
    }

    #[test]
    fn well_formed_parentage_never_yields_orphans(events in arb_events()) {
        let analysis = Analysis::from_events(&events);
        prop_assert_eq!(analysis.orphans, 0);
        let spans = events.iter().filter(|e| e.kind == EventKind::Span).count();
        prop_assert_eq!(analysis.nodes.len(), spans);
        // flamegraph export never panics and only emits positive values
        for (stack, value) in jp_trace::folded_stacks(&analysis) {
            prop_assert!(value > 0, "zero-valued stack {stack} leaked");
            prop_assert!(stack.starts_with("thread-"));
        }
    }
}
