//! Offline stand-in for `serde_derive`.
//!
//! The real `serde_derive` pulls in `syn`/`quote`/`proc-macro2`, none of
//! which are available offline, so these derives parse the item with a
//! small hand-rolled `TokenTree` walker and emit the impl as a source
//! string. Supported shapes (everything this workspace derives):
//!
//! * structs with named fields, tuple structs, unit structs;
//! * externally tagged enums with unit, newtype, tuple, and struct
//!   variants;
//! * container attributes `#[serde(from = "T")]`, `#[serde(into = "T")]`,
//!   `#[serde(try_from = "T")]`.
//!
//! Generic types are rejected with a compile-time panic: nothing in the
//! workspace derives them, and supporting bounds without `syn` would cost
//! more than it buys.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the vendored `to_content` flavor).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` (the vendored `from_content` flavor).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// item model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    attrs: ContainerAttrs,
    shape: Shape,
}

#[derive(Default)]
struct ContainerAttrs {
    from: Option<String>,
    try_from: Option<String>,
    into: Option<String>,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

// ---------------------------------------------------------------------------
// parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut attrs = ContainerAttrs::default();

    // Leading attributes: `#[serde(...)]` is harvested, everything else
    // (doc comments, cfg, other derives' helpers) is skipped.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    harvest_serde_attr(g.stream(), &mut attrs);
                    i += 2;
                } else {
                    panic!("malformed attribute");
                }
            }
            _ => break,
        }
    }

    // Visibility: `pub`, optionally `pub(...)`.
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis) {
            i += 1;
        }
    }

    let kw = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    i += 1;

    if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '<') {
        panic!("vendored serde derive does not support generic type `{name}`");
    }

    let shape = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("vendored serde derive supports structs and enums, found `{other}`"),
    };

    Item { name, attrs, shape }
}

/// Extracts `from`/`into`/`try_from` from a `serde(...)` attribute body;
/// ignores non-serde attributes entirely.
fn harvest_serde_attr(attr_body: TokenStream, attrs: &mut ContainerAttrs) {
    let tokens: Vec<TokenTree> = attr_body.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let args = match tokens.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return,
    };
    let args: Vec<TokenTree> = args.into_iter().collect();
    let mut j = 0;
    while j < args.len() {
        let key = match &args[j] {
            TokenTree::Ident(id) => id.to_string(),
            TokenTree::Punct(p) if p.as_char() == ',' => {
                j += 1;
                continue;
            }
            other => panic!("unsupported serde attribute token {other}"),
        };
        match (args.get(j + 1), args.get(j + 2)) {
            (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) if eq.as_char() == '=' => {
                let value = unquote(&lit.to_string());
                match key.as_str() {
                    "from" => attrs.from = Some(value),
                    "try_from" => attrs.try_from = Some(value),
                    "into" => attrs.into = Some(value),
                    other => panic!("unsupported serde attribute `{other}`"),
                }
                j += 3;
            }
            _ => panic!("unsupported serde attribute form `{key}`"),
        }
    }
}

fn unquote(lit: &str) -> String {
    let inner = lit
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or_else(|| panic!("expected string literal, found {lit}"));
    inner.to_string()
}

/// Field names of a named-field body, in declaration order.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip field attributes (doc comments included).
        while matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i += 2;
        }
        if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(
                tokens.get(i),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                i += 1;
            }
        }
        match &tokens[i] {
            TokenTree::Ident(id) => fields.push(id.to_string()),
            other => panic!("expected field name, found {other}"),
        }
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field name, found {other}"),
        }
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut angle: i32 = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Arity of a tuple body (top-level comma count, angle-aware).
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle: i32 = 0;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            // A trailing comma does not start a new field.
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 && idx + 1 < tokens.len() => {
                count += 1;
            }
            _ => {}
        }
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i += 2;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Discriminants (`= expr`) are not supported with serde derives here.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("explicit discriminants are not supported by the vendored serde derive");
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(proxy) = &item.attrs.into {
        format!(
            "let __proxy: {proxy} = ::core::convert::Into::into(::core::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_content(&__proxy)"
        )
    } else {
        match &item.shape {
            Shape::NamedStruct(fields) => {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_content(&self.{f}))"
                        )
                    })
                    .collect();
                format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "))
            }
            Shape::TupleStruct(1) => {
                // Newtype structs serialize transparently, as in real serde.
                "::serde::Serialize::to_content(&self.0)".to_string()
            }
            Shape::TupleStruct(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Serialize::to_content(&self.{k})"))
                    .collect();
                format!("::serde::Content::Seq(::std::vec![{}])", elems.join(", "))
            }
            Shape::UnitStruct => "::serde::Content::Null".to_string(),
            Shape::Enum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| gen_serialize_variant(name, v))
                    .collect();
                format!("match self {{\n{}\n}}", arms.join("\n"))
            }
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_serialize_variant(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    let tag = format!("::std::string::String::from(\"{vname}\")");
    match &v.kind {
        VariantKind::Unit => {
            format!("{enum_name}::{vname} => ::serde::Content::Str({tag}),")
        }
        VariantKind::Tuple(1) => format!(
            "{enum_name}::{vname}(__f0) => ::serde::Content::Map(::std::vec![({tag}, \
             ::serde::Serialize::to_content(__f0))]),"
        ),
        VariantKind::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_content(__f{k})"))
                .collect();
            format!(
                "{enum_name}::{vname}({}) => ::serde::Content::Map(::std::vec![({tag}, \
                 ::serde::Content::Seq(::std::vec![{}]))]),",
                binds.join(", "),
                elems.join(", ")
            )
        }
        VariantKind::Struct(fields) => {
            let binds = fields.join(", ");
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_content({f}))"
                    )
                })
                .collect();
            format!(
                "{enum_name}::{vname} {{ {binds} }} => ::serde::Content::Map(::std::vec![({tag}, \
                 ::serde::Content::Map(::std::vec![{}]))]),",
                entries.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(proxy) = &item.attrs.from {
        format!(
            "let __proxy = <{proxy} as ::serde::Deserialize>::from_content(__content)?;\n\
             ::core::result::Result::Ok(<Self as ::core::convert::From<{proxy}>>::from(__proxy))"
        )
    } else if let Some(proxy) = &item.attrs.try_from {
        format!(
            "let __proxy = <{proxy} as ::serde::Deserialize>::from_content(__content)?;\n\
             <Self as ::core::convert::TryFrom<{proxy}>>::try_from(__proxy)\
             .map_err(::serde::DeError::custom)"
        )
    } else {
        match &item.shape {
            Shape::NamedStruct(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{f}: ::serde::field(__map, \"{name}\", \"{f}\")?,"))
                    .collect();
                format!(
                    "let __map = __content.as_map().ok_or_else(|| \
                     ::serde::DeError::expected(\"object for struct {name}\", __content))?;\n\
                     ::core::result::Result::Ok({name} {{\n{}\n}})",
                    inits.join("\n")
                )
            }
            Shape::TupleStruct(1) => format!(
                "::core::result::Result::Ok({name}(::serde::Deserialize::from_content(__content)?))"
            ),
            Shape::TupleStruct(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_content(&__seq[{k}])?"))
                    .collect();
                format!(
                    "let __seq = __content.as_seq().ok_or_else(|| \
                     ::serde::DeError::expected(\"array for struct {name}\", __content))?;\n\
                     if __seq.len() != {n} {{ return ::core::result::Result::Err(\
                     ::serde::DeError::custom(\"wrong tuple length for {name}\")); }}\n\
                     ::core::result::Result::Ok({name}({}))",
                    elems.join(", ")
                )
            }
            Shape::UnitStruct => format!("::core::result::Result::Ok({name})"),
            Shape::Enum(variants) => gen_deserialize_enum(name, variants),
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(__content: &::serde::Content) -> \
             ::core::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut out = String::new();
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| {
            format!(
                "\"{v}\" => return ::core::result::Result::Ok({name}::{v}),",
                v = v.name
            )
        })
        .collect();
    if !unit_arms.is_empty() {
        out.push_str(&format!(
            "if let ::serde::Content::Str(__s) = __content {{\n\
                 match __s.as_str() {{\n{}\n_ => {{}}\n}}\n\
             }}\n",
            unit_arms.join("\n")
        ));
    }
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            match &v.kind {
                VariantKind::Unit => None,
                VariantKind::Tuple(1) => Some(format!(
                    "\"{vname}\" => return ::core::result::Result::Ok({name}::{vname}(\
                     ::serde::Deserialize::from_content(__v)?)),"
                )),
                VariantKind::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_content(&__seq[{k}])?"))
                        .collect();
                    Some(format!(
                        "\"{vname}\" => {{\n\
                             let __seq = __v.as_seq().ok_or_else(|| \
                             ::serde::DeError::expected(\"array for variant {vname}\", __v))?;\n\
                             if __seq.len() != {n} {{ return ::core::result::Result::Err(\
                             ::serde::DeError::custom(\"wrong arity for variant {vname}\")); }}\n\
                             return ::core::result::Result::Ok({name}::{vname}({}));\n\
                         }}",
                        elems.join(", ")
                    ))
                }
                VariantKind::Struct(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| format!("{f}: ::serde::field(__inner, \"{name}\", \"{f}\")?,"))
                        .collect();
                    Some(format!(
                        "\"{vname}\" => {{\n\
                             let __inner = __v.as_map().ok_or_else(|| \
                             ::serde::DeError::expected(\"object for variant {vname}\", __v))?;\n\
                             return ::core::result::Result::Ok({name}::{vname} {{\n{}\n}});\n\
                         }}",
                        inits.join("\n")
                    ))
                }
            }
        })
        .collect();
    if !tagged_arms.is_empty() {
        out.push_str(&format!(
            "if let ::serde::Content::Map(__m) = __content {{\n\
                 if __m.len() == 1 {{\n\
                     let (__k, __v) = &__m[0];\n\
                     match __k.as_str() {{\n{}\n_ => {{}}\n}}\n\
                 }}\n\
             }}\n",
            tagged_arms.join("\n")
        ));
    }
    out.push_str(&format!(
        "::core::result::Result::Err(::serde::DeError::custom(\
         \"invalid value for enum {name}\"))"
    ));
    out
}
