//! Offline stand-in for `serde`.
//!
//! Instead of serde's visitor-based zero-copy architecture, this vendored
//! shim routes every value through an owned [`Content`] tree — the same
//! data model `serde_json::Value` exposes. [`Serialize`] renders a value
//! *to* a `Content`; [`Deserialize`] reconstructs a value *from* one.
//! `serde_json` (also vendored) converts `Content` to and from JSON text.
//!
//! The derive macros (re-exported from `serde_derive`) support what this
//! workspace uses: named-field structs, tuple/unit structs, externally
//! tagged enums with unit/newtype/tuple/struct variants, and the
//! container attributes `#[serde(from = "...")]`, `#[serde(into = "...")]`
//! and `#[serde(try_from = "...")]`.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every value passes through.
///
/// JSON-shaped on purpose: maps keep insertion order so serialized output
/// is deterministic and mirrors field declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (always < 0; non-negative values use `U64`).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// JSON array.
    Seq(Vec<Content>),
    /// JSON object, in insertion order.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        }
    }
}

/// Deserialization failure: a human-readable message, optionally wrapped
/// with path context by callers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Builds an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }

    /// Standard "expected X, found Y" error.
    pub fn expected(what: &str, found: &Content) -> Self {
        DeError(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Values that can render themselves into the [`Content`] data model.
pub trait Serialize {
    /// Converts `self` to a `Content` tree.
    fn to_content(&self) -> Content;
}

/// Values reconstructible from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds a value from a `Content` tree.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

/// Looks up a struct field in a map, with a struct-aware error message.
///
/// Used by the derive-generated code; `Option<T>` fields treat a missing
/// key as `None` via [`Deserialize`] on `Option`.
pub fn field<T: Deserialize>(
    map: &[(String, Content)],
    strukt: &str,
    name: &str,
) -> Result<T, DeError> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::from_content(v).map_err(|e| DeError(format!("field `{name}` of `{strukt}`: {e}")))
        }
        None => T::from_content(&Content::Null)
            .map_err(|_| DeError(format!("missing field `{name}` of `{strukt}`"))),
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let v = match content {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(v).map_err(|_| {
                    DeError::custom(format!(
                        "integer {v} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let v: i64 = match content {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v).map_err(|_| {
                        DeError::custom(format!("integer {v} out of range for i64"))
                    })?,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(v).map_err(|_| {
                    DeError::custom(format!(
                        "integer {v} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::F64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($len:expr => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::Seq(items) if items.len() == $len => {
                        Ok(($($t::from_content(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected(
                        concat!("array of length ", $len),
                        other,
                    )),
                }
            }
        }
    };
}

impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(5u32.to_content(), Content::U64(5));
        assert_eq!((-3i64).to_content(), Content::I64(-3));
        assert_eq!(u32::from_content(&Content::U64(5)).unwrap(), 5);
        assert!(u32::from_content(&Content::I64(-1)).is_err());
        let v: Vec<(u32, u32)> = vec![(1, 2), (3, 4)];
        let c = v.to_content();
        assert_eq!(Vec::<(u32, u32)>::from_content(&c).unwrap(), v);
        let none: Option<u32> = None;
        assert_eq!(none.to_content(), Content::Null);
        assert_eq!(Option::<u32>::from_content(&Content::Null).unwrap(), None);
    }
}
