//! Offline stand-in for `serde_json`.
//!
//! Renders and parses JSON against the vendored `serde` [`Content`] data
//! model. Covers the workspace's API use: [`to_string`],
//! [`to_string_pretty`], and [`from_str`], with an [`Error`] that
//! implements `Display` + `Error`.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// JSON serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serializes `value` as compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let content = parse(s)?;
    T::from_content(&content).map_err(|e| Error::new(e.to_string()))
}

// ---------------------------------------------------------------------------
// rendering
// ---------------------------------------------------------------------------

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_json_string(s, out),
        Content::Seq(items) => {
            write_bracketed(
                out,
                '[',
                ']',
                items.len(),
                indent,
                depth,
                |out, i, ind, d| {
                    write_content(&items[i], out, ind, d);
                },
            );
        }
        Content::Map(entries) => {
            write_bracketed(
                out,
                '{',
                '}',
                entries.len(),
                indent,
                depth,
                |out, i, ind, d| {
                    let (k, v) = &entries[i];
                    write_json_string(k, out);
                    out.push(':');
                    if ind.is_some() {
                        out.push(' ');
                    }
                    write_content(v, out, ind, d);
                },
            );
        }
    }
}

fn write_bracketed(
    out: &mut String,
    open: char,
    close: char,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, usize, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(out, i, indent, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            // Match serde_json: whole floats render with a trailing `.0`.
            out.push_str(&format!("{v:.1}"));
        } else {
            out.push_str(&v.to_string());
        }
    } else {
        // serde_json errors on non-finite floats; rendering null is the
        // pragmatic offline choice (nothing in the workspace hits this).
        out.push_str("null");
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Content::Str(self.string()?)),
            Some(b't') => self.keyword("true", Content::Bool(true)),
            Some(b'f') => self.keyword("false", Content::Bool(false)),
            Some(b'n') => self.keyword("null", Content::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            // `-0` parses as integer zero, like serde_json.
            if stripped.chars().all(|c| c == '0') {
                return Ok(Content::U64(0));
            }
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|_| Error::new(format!("integer out of range `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| Error::new(format!("integer out of range `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v: Vec<(u32, i64)> = vec![(1, -2), (3, 4)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,-2],[3,4]]");
        let back: Vec<(u32, i64)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_whitespace_escapes_and_floats() {
        let c = parse(" { \"a\\n\" : [ 1.5 , true , null ] } ").unwrap();
        match c {
            Content::Map(m) => {
                assert_eq!(m[0].0, "a\n");
                assert_eq!(
                    m[0].1,
                    Content::Seq(vec![Content::F64(1.5), Content::Bool(true), Content::Null])
                );
            }
            _ => panic!("expected map"),
        }
    }

    #[test]
    fn pretty_prints_with_indentation() {
        let v: Vec<u32> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u32>("1 x").is_err());
    }
}
