//! Offline stand-in for `criterion`.
//!
//! A functional wall-clock benchmark harness with criterion's API shape:
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::benchmark_group`],
//! `bench_function`/`bench_with_input`, [`Throughput`], [`BenchmarkId`],
//! and `Bencher::iter`. No statistics beyond median-of-samples, no HTML
//! reports — each benchmark prints `name  median  (samples)` to stdout.
//!
//! `--bench` and name-filter CLI arguments passed by `cargo bench` are
//! accepted and the filter is honored.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Work-per-iteration annotation (printed alongside timings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just a parameter (the group provides the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs the closure under timing.
pub struct Bencher {
    samples: usize,
    last_median: Duration,
}

impl Bencher {
    /// Times `routine`, recording the median of `samples` runs (with one
    /// warm-up call).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed());
        }
        times.sort();
        self.last_median = times[times.len() / 2];
    }
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Reads the name filter from `cargo bench`-style CLI args.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" => {}
                s if s.starts_with("--") => {
                    // Flags with values we don't implement: skip the value.
                    if !s.contains('=') {
                        let _ = args.next();
                    }
                }
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        name: impl fmt::Display,
        routine: R,
    ) -> &mut Self {
        let sample_size = self.sample_size;
        self.run_one(&name.to_string(), sample_size, None, routine);
        self
    }

    fn run_one<R: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        samples: usize,
        throughput: Option<Throughput>,
        mut routine: R,
    ) {
        if let Some(f) = &self.filter {
            if !name.contains(f.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            samples,
            last_median: Duration::ZERO,
        };
        routine(&mut b);
        let median = b.last_median;
        let rate = throughput.map(|t| {
            let secs = median.as_secs_f64().max(1e-12);
            match t {
                Throughput::Elements(n) => format!("  {:.3e} elem/s", n as f64 / secs),
                Throughput::Bytes(n) => format!("  {:.3e} B/s", n as f64 / secs),
            }
        });
        println!(
            "bench: {name:<50} {:>12.3?}  ({samples} samples){}",
            median,
            rate.unwrap_or_default()
        );
    }
}

/// A set of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        routine: R,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let throughput = self.throughput;
        self.criterion.run_one(&full, samples, throughput, routine);
        self
    }

    /// Benchmarks a function against a borrowed input.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Ends the group (kept for API parity; groups need no teardown).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
