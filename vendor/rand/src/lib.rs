//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of `rand`'s API it actually uses: [`rngs::SmallRng`] seeded
//! via [`SeedableRng::seed_from_u64`], plus [`Rng::random`],
//! [`Rng::random_range`] and [`Rng::random_bool`]. The generator is
//! xoshiro256++ (the same family the real `SmallRng` uses on 64-bit
//! targets), seeded through splitmix64, so streams are deterministic,
//! well-mixed, and stable across runs — which is all the workload
//! generators and property tests require.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their "standard" domain
/// (for floats: the unit interval `[0, 1)`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly, mirroring
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value in the range; panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of a [`StandardSample`] type (e.g. `f64` in `[0,1)`).
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG: xoshiro256++.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = r.random_range(0..10);
            assert!(x < 10);
            let y: i64 = r.random_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    impl SmallRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut r = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
