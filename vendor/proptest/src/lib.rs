//! Offline stand-in for `proptest`.
//!
//! A deterministic, shrink-free property-testing harness covering the
//! API this workspace uses: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]`), integer-range / tuple / [`Just`]
//! strategies, `prop_map` / `prop_flat_map`, [`collection::vec`],
//! [`arbitrary::any`], and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from real proptest, by design:
//!
//! * cases are generated from a **fixed seed**, so failures reproduce
//!   exactly across runs and machines;
//! * there is **no shrinking** — on failure the harness prints the
//!   offending input (`Debug`) and case number, then re-panics;
//! * `prop_assert!` panics instead of returning `TestCaseError`, which
//!   is indistinguishable at the `cargo test` level.

use std::fmt::Debug;

/// Deterministic splitmix64 stream used to drive strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A generator of test-case values.
pub trait Strategy: Sized {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategies {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategies!(A.0);
impl_tuple_strategies!(A.0, B.1);
impl_tuple_strategies!(A.0, B.1, C.2);
impl_tuple_strategies!(A.0, B.1, C.2, D.3);
impl_tuple_strategies!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategies!(A.0, B.1, C.2, D.3, E.4, F.5);

/// `any::<T>()` support: types with a canonical full-domain strategy.
pub mod arbitrary {
    use super::{Strategy, TestRng};

    /// Types with a canonical "whole domain" strategy.
    pub trait Arbitrary: Sized {
        /// The strategy [`any`] returns.
        type Strategy: Strategy<Value = Self>;

        /// Builds the whole-domain strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Uniform over the entire domain of `T`.
    pub struct FullDomain<T> {
        _marker: std::marker::PhantomData<T>,
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Strategy for FullDomain<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = FullDomain<$t>;

                fn arbitrary() -> Self::Strategy {
                    FullDomain { _marker: std::marker::PhantomData }
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for FullDomain<bool> {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = FullDomain<bool>;

        fn arbitrary() -> Self::Strategy {
            FullDomain {
                _marker: std::marker::PhantomData,
            }
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Element count for [`vec()`], convertible from ranges and constants.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Test-runner configuration and the case loop.
pub mod test_runner {
    use super::{Strategy, TestRng};
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// How many cases each property runs.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Runs `test` against `config.cases` deterministic samples of
    /// `strategy`; on panic, reports the input and case index, then
    /// re-panics.
    pub fn run<S: Strategy>(config: &Config, strategy: &S, test: impl Fn(S::Value))
    where
        S::Value: std::fmt::Debug,
    {
        let mut rng = TestRng::new(0xC0FF_EE00_D15E_A5ED);
        for case in 0..config.cases {
            let value = strategy.sample(&mut rng);
            let repr = format!("{value:?}");
            let outcome = catch_unwind(AssertUnwindSafe(|| test(value)));
            if let Err(panic) = outcome {
                eprintln!(
                    "proptest case {case}/{} failed for input: {repr}",
                    config.cases
                );
                resume_unwind(panic);
            }
        }
    }
}

/// The glob-importable surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, Strategy};
}

/// Asserts a condition inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Asserts inequality inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` becomes
/// a `#[test]` running [`test_runner::run`] over the tuple of strategies.
#[macro_export]
macro_rules! proptest {
    (@with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let __strategy = ($($strategy,)+);
                $crate::test_runner::run(&__config, &__strategy, |($($arg,)+)| $body);
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config (<$crate::test_runner::Config as ::core::default::Default>::default())
            $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u32> {
        (0u32..100).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -4i64..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn combinators_compose(v in crate::collection::vec((evens(), Just(7u8)), 0..5)) {
            prop_assert!(v.len() < 5);
            for (e, seven) in v {
                prop_assert_eq!(e % 2, 0);
                prop_assert_eq!(seven, 7);
            }
        }

        #[test]
        fn flat_map_dependency_holds(pair in (1u32..10).prop_flat_map(|n| (Just(n), 0..n))) {
            let (n, k) = pair;
            prop_assert!(k < n);
        }
    }
}
