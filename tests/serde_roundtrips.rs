//! Persistence round-trips: every serializable artifact must survive
//! JSON serialization unchanged — the durability contract the CLI's
//! `--out`/`replay` workflow depends on.

use join_predicates::graph::{generators, BipartiteGraph};
use join_predicates::pebble::approx::pebble_dfs_partition;
use join_predicates::pebble::buffers::{schedule_greedy, BufferSchedule};
use join_predicates::pebble::PebblingScheme;
use join_predicates::relalg::{realize, Relation};

#[test]
fn graphs_roundtrip_with_rebuilt_adjacency() {
    for g in [
        generators::spider(6),
        generators::random_bipartite(8, 7, 0.3, 44),
        BipartiteGraph::new(3, 3, vec![]),
    ] {
        let json = serde_json::to_string(&g).unwrap();
        let back: BipartiteGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
        // adjacency works after deserialization (it is rebuilt, not stored)
        for l in 0..back.left_count() {
            assert_eq!(back.left_neighbors(l), g.left_neighbors(l));
        }
    }
}

#[test]
fn schemes_roundtrip_and_stay_valid() {
    let g = generators::spider(5);
    let s = pebble_dfs_partition(&g).unwrap();
    let json = serde_json::to_string(&s).unwrap();
    let back: PebblingScheme = serde_json::from_str(&json).unwrap();
    assert_eq!(back, s);
    back.validate(&g).unwrap();
    assert_eq!(back.effective_cost(&g), s.effective_cost(&g));
}

#[test]
fn buffer_schedules_roundtrip() {
    let g = generators::complete_bipartite(4, 4);
    let s = schedule_greedy(&g, 5).unwrap();
    let json = serde_json::to_string(&s).unwrap();
    let back: BufferSchedule = serde_json::from_str(&json).unwrap();
    assert_eq!(back, s);
    back.validate(&g, 5).unwrap();
}

#[test]
fn relations_roundtrip_across_domains() {
    let g = generators::spider(4);
    let (r, s) = realize::set_containment_instance(&g);
    for rel in [&r, &s] {
        let json = serde_json::to_string(rel).unwrap();
        let back: Relation = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, rel);
    }
    let (r, s) = realize::spatial_universal_instance(&g);
    for rel in [&r, &s] {
        let json = serde_json::to_string(rel).unwrap();
        let back: Relation = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, rel);
    }
    // joining the deserialized relations reproduces the graph
    let back_r: Relation = serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
    let back_s: Relation = serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
    assert_eq!(
        join_predicates::relalg::spatial_graph(&back_r, &back_s).unwrap(),
        g
    );
}
