//! Integration-level verification of the paper's numbered claims, one
//! test per theorem/lemma, spanning crates. (The per-module unit tests
//! check the pieces; these check the statements.)

use join_predicates::graph::{generators, hamilton, line_graph, properties};
use join_predicates::pebble::approx::{pebble_dfs_partition, pebble_equijoin};
use join_predicates::pebble::reductions::{diamond::Diamond, tsp3_to_pebble, tsp4_to_tsp3};
use join_predicates::pebble::{bounds, exact, families, tsp::Tsp12};
use join_predicates::relalg::{containment_graph, realize, spatial_graph};

#[test]
fn lemma_2_1_and_2_3_cost_window() {
    // CLAIM(L2.1, C2.1): m+1 <= pi-hat <= 2m and m <= pi <= 2m-1
    for seed in 0..10u64 {
        let g = generators::random_connected_bipartite(4, 4, 10, seed);
        let m = g.edge_count();
        let pi_hat = exact::optimal_total_cost(&g).unwrap();
        let pi = exact::optimal_effective_cost(&g).unwrap();
        assert!((m + 1..=2 * m).contains(&pi_hat));
        assert!((m..=2 * m - 1).contains(&pi));
    }
}

#[test]
fn lemma_2_2_additivity() {
    // CLAIM(L2.2): additivity over disjoint unions
    let a = generators::spider(3);
    let b = generators::random_connected_bipartite(3, 3, 7, 9);
    let u = a.disjoint_union(&b);
    assert_eq!(
        exact::optimal_total_cost(&u).unwrap(),
        exact::optimal_total_cost(&a).unwrap() + exact::optimal_total_cost(&b).unwrap()
    );
}

#[test]
fn lemma_2_4_matchings() {
    // CLAIM(L2.4): matchings cost pi-hat = 2m, pi = m
    for m in [1u32, 4, 9] {
        let g = generators::matching(m);
        assert_eq!(exact::optimal_total_cost(&g).unwrap(), 2 * m as usize);
        assert_eq!(exact::optimal_effective_cost(&g).unwrap(), m as usize);
    }
}

#[test]
fn proposition_2_1_perfect_iff_traceable() {
    // CLAIM(P2.1): pi = m iff L(G) is traceable
    for (g, expect) in [
        (generators::path(6), true),
        (generators::complete_bipartite(3, 3), true),
        (generators::spider(4), false),
    ] {
        let traceable = hamilton::has_hamiltonian_path(&line_graph(&g));
        assert_eq!(traceable, expect);
        assert_eq!(
            exact::optimal_effective_cost(&g).unwrap() == g.edge_count(),
            expect
        );
    }
}

#[test]
fn proposition_2_2_tsp_path_cost_is_pi_minus_one() {
    // CLAIM(P2.2): the optimal TSP(1,2) path in L(G) costs pi(G) - 1
    for seed in 0..8u64 {
        let g = generators::random_connected_bipartite(4, 4, 10, seed);
        let lg = line_graph(&g);
        let tsp_cost = exact::optimal_tsp_cost(&Tsp12::new(lg));
        let pi = exact::optimal_effective_cost(&g).unwrap();
        assert_eq!(tsp_cost, pi - 1, "seed {seed}");
    }
}

#[test]
fn theorem_3_1_upper_bound_via_construction() {
    // CLAIM(T3.1): pi <= 1.25m constructively
    for seed in 0..8u64 {
        let g = generators::random_connected_bipartite(6, 6, 18, seed);
        let s = pebble_dfs_partition(&g).unwrap();
        assert!(s.effective_cost(&g) <= (5 * g.edge_count()).div_ceil(4));
    }
}

#[test]
fn theorem_3_2_equijoins_pebble_perfectly() {
    // CLAIM(L3.2, T3.2): equijoin graphs pebble perfectly
    let g = generators::complete_bipartite(3, 7)
        .disjoint_union(&generators::complete_bipartite(5, 2))
        .disjoint_union(&generators::matching(6));
    let s = pebble_equijoin(&g).unwrap();
    assert_eq!(s.effective_cost(&g), g.edge_count());
}

#[test]
fn lemma_3_3_universality_through_real_joins() {
    // CLAIM(L3.3): containment joins are universal
    for g in [
        generators::spider(5),
        generators::random_bipartite(7, 7, 0.35, 3),
    ] {
        let (r, s) = realize::set_containment_instance(&g);
        assert_eq!(containment_graph(&r, &s).unwrap(), g);
    }
}

#[test]
fn theorem_3_3_spider_worst_case() {
    // CLAIM(T3.3): the spider family is a 1.25m - 1 worst case
    for n in [4u32, 6] {
        let g = generators::spider(n);
        let m = 2 * n as usize;
        assert_eq!(exact::optimal_effective_cost(&g).unwrap(), 5 * m / 4 - 1);
        assert_eq!(bounds::pendant_lower_bound(&g), 5 * m / 4 - 1);
        assert!(!properties::is_equijoin_graph(&g));
    }
    // at scale via witness + certificate
    let (g, s) = families::spider_optimal_scheme(50_000);
    assert_eq!(
        s.effective_cost(&g) as u64,
        families::spider_optimal_cost(50_000)
    );
    assert_eq!(bounds::pendant_lower_bound(&g), s.effective_cost(&g));
}

#[test]
fn lemma_3_4_spatial_realization() {
    // CLAIM(L3.4): spiders realize as spatial joins
    for n in [3u32, 8] {
        let (r, s) = realize::spatial_spider_instance(n);
        assert_eq!(spatial_graph(&r, &s).unwrap(), generators::spider(n));
    }
}

#[test]
fn theorem_4_1_equijoin_linear_pebbling_is_exact() {
    // CLAIM(T4.1): linear-time equijoin pebbling is exact
    let g = generators::complete_bipartite(4, 5).disjoint_union(&generators::matching(3));
    assert_eq!(
        pebble_equijoin(&g).unwrap().effective_cost(&g),
        exact::optimal_effective_cost(&g).unwrap()
    );
}

#[test]
fn theorem_4_2_decision_procedure_exact_on_spatial_graphs() {
    // CLAIM(T4.2): PEBBLE(D) decision on spatial graphs
    // PEBBLE(D) instances arising from spatial joins
    let g0 = generators::random_connected_bipartite(4, 4, 9, 77);
    let (r, s) = realize::spatial_universal_instance(&g0);
    let g = spatial_graph(&r, &s).unwrap();
    let opt = exact::optimal_effective_cost(&g).unwrap();
    assert!(exact::pebble_decision(&g, opt).unwrap());
    assert!(!exact::pebble_decision(&g, opt - 1).unwrap());
}

#[test]
fn theorem_4_3_reduction_properties() {
    // CLAIM(T4.3): diamond-gadget reduction invariants
    let d = Diamond::new();
    assert!(d.no_two_disjoint_corner_paths_cover());
    let ones = generators::random_bounded_degree(5, 4, 8, 1);
    if ones.is_connected() {
        let g = Tsp12::new(ones);
        let red = tsp4_to_tsp3::reduce(&g);
        assert!(red.h().ones().max_degree() <= 3);
    }
}

#[test]
fn theorem_4_4_reduction_round_trip() {
    // CLAIM(T4.4): TSP-3(1,2) -> PEBBLE round trip
    let ones = generators::random_bounded_degree(6, 3, 7, 5);
    if !ones.is_connected() {
        return;
    }
    let g = Tsp12::new(ones);
    let red = tsp3_to_pebble::reduce(&g);
    let (tour, jumps) = exact::min_jump_tour(g.ones());
    let scheme = red.forward_scheme(&tour).unwrap();
    assert_eq!(scheme.jumps(red.b()), jumps);
    let back = red.back_tour(&scheme);
    let mut sorted = back.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..g.n() as u32).collect::<Vec<_>>());
}
