//! Integration tests for the extension layers: join traces (E16),
//! fragment mappings + parallel execution (E17/§5), and page-fetch
//! scheduling (E18/related work) — wired together across crates.

use join_predicates::graph::{generators, quotient};
use join_predicates::pebble::analysis::implied_scheme;
use join_predicates::pebble::fragmentation::{
    balanced_capacity, component_pack, connected_lower_bound, exact_min_investigated,
};
use join_predicates::pebble::paging::{page_fetches, schedule_page_fetches, PageLayout};
use join_predicates::pebble::{bounds, exact_bb};
use join_predicates::relalg::predicate::Equality;
use join_predicates::relalg::{equijoin_graph, parallel, trace, workload};

#[test]
fn trace_to_scheme_pipeline_measures_algorithms() {
    let (r, s) = workload::zipf_equijoin(150, 150, 20, 0.7, 51);
    let g = equijoin_graph(&r, &s).unwrap();
    let bst = implied_scheme(&g, &trace::sort_merge_boustrophedon(&r, &s)).unwrap();
    let fwd = implied_scheme(&g, &trace::sort_merge_forward(&r, &s)).unwrap();
    let unord = implied_scheme(&g, &trace::unordered_executor_trace(&r, &s, 3)).unwrap();
    bst.validate(&g).unwrap();
    fwd.validate(&g).unwrap();
    unord.validate(&g).unwrap();
    // boustrophedon = optimal; monotone ladder; Lemma 2.1 ceiling
    assert_eq!(bst.cost(), bounds::lower_bound_total(&g));
    assert!(fwd.cost() >= bst.cost());
    assert!(unord.cost() >= fwd.cost());
    assert!(unord.cost() <= bounds::upper_bound_total(&g));
}

#[test]
fn fragmentation_plans_execute_in_parallel_and_match() {
    let (r, s) = workload::zipf_equijoin(200, 180, 60, 0.5, 52);
    let g = equijoin_graph(&r, &s).unwrap();
    let (p, q) = (3u32, 3u32);
    let cap_l = balanced_capacity(r.len(), p) + 4;
    let cap_r = balanced_capacity(s.len(), q) + 4;
    let m = component_pack(&g, p, q, cap_l, cap_r);
    m.validate(&g, cap_l, cap_r).unwrap();
    // the plan's cost is the quotient's edge count
    assert_eq!(
        m.cost(&g),
        quotient(&g, &m.left, p, &m.right, q).edge_count()
    );
    // executing the plan reproduces the join exactly
    let pairs = parallel::fragmented_join(&r, &s, &Equality, &m.left, p, &m.right, q, 4);
    assert_eq!(pairs, g.edges().to_vec());
}

#[test]
fn exact_fragmentation_dominates_heuristic_on_tiny_instances() {
    for (g, p, q) in [
        (generators::matching(4), 2u32, 2u32),
        (generators::spider(3), 2, 2),
        (generators::complete_bipartite(2, 3), 2, 2),
    ] {
        let cap_l = balanced_capacity(g.left_count() as usize, p);
        let cap_r = balanced_capacity(g.right_count() as usize, q);
        let (_, opt) = exact_min_investigated(&g, p, q, cap_l, cap_r);
        let heur = component_pack(&g, p, q, cap_l, cap_r).cost(&g);
        assert!(heur >= opt, "{g}: heuristic {heur} below exact {opt}");
        assert!(opt >= connected_lower_bound(&g, cap_l, cap_r).min(opt));
    }
}

#[test]
fn page_scheduling_pipeline_across_granularities() {
    let g = generators::spider(24);
    let mut prev_edges = usize::MAX;
    for cap in [1usize, 2, 4, 8] {
        let layout =
            PageLayout::sequential(g.left_count() as usize, g.right_count() as usize, cap).unwrap();
        let (pg, scheme) = schedule_page_fetches(&g, &layout).unwrap();
        scheme.validate(&pg).unwrap();
        assert!(
            pg.edge_count() <= prev_edges,
            "coarser pages shrink the page graph"
        );
        prev_edges = pg.edge_count();
        assert!(page_fetches(&scheme) > pg.edge_count());
    }
}

#[test]
fn bb_certifies_spider_optimum_beyond_held_karp() {
    let g = generators::spider(18); // m = 36 > Held–Karp limit
    let cost = exact_bb::optimal_effective_cost_bb(&g, 100_000_000).unwrap();
    assert_eq!(
        cost as u64,
        join_predicates::pebble::families::spider_optimal_cost(18)
    );
}
