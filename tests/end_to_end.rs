//! Cross-crate integration: the full pipeline from relations through join
//! algorithms, join graphs, and pebbling, for all three predicate
//! classes the paper studies.

use join_predicates::graph::{betti_number, properties};
use join_predicates::pebble::approx::{pebble_dfs_partition, pebble_equijoin, pebble_euler_trails};
use join_predicates::pebble::{analysis::SchemeReport, bounds, exact};
use join_predicates::relalg::{
    algorithms, containment_graph, equijoin_graph, spatial_graph, workload,
};

#[test]
fn equijoin_pipeline_is_perfect_and_consistent() {
    let (r, s) = workload::zipf_equijoin(400, 350, 50, 1.0, 99);
    // algorithm agreement
    let pairs = algorithms::equi::hash_join(&r, &s);
    assert_eq!(pairs, algorithms::equi::sort_merge(&r, &s));
    assert_eq!(pairs, algorithms::equi::index_nested_loops(&r, &s));
    // join graph equals the result
    let g = equijoin_graph(&r, &s).unwrap();
    assert_eq!(g.edges(), &pairs[..]);
    assert!(properties::is_equijoin_graph(&g));
    // perfect pebbling (Theorem 3.2) with exact bookkeeping
    let scheme = pebble_equijoin(&g).unwrap();
    let report = SchemeReport::new(&g, &scheme);
    assert!(report.is_perfect());
    assert_eq!(
        report.total_cost,
        g.edge_count() + betti_number(&g) as usize
    );
    assert_eq!(report.jumps, betti_number(&g) as usize - 1);
}

#[test]
fn containment_pipeline_hits_general_graph_regime() {
    let (r, s) = workload::set_workload(150, 120, 600, 2..=5, 6..=12, 0.5, 100);
    let pairs = algorithms::containment::inverted_index(&r, &s);
    assert_eq!(pairs, algorithms::containment::naive(&r, &s));
    assert_eq!(pairs, algorithms::containment::signature(&r, &s));
    let g = containment_graph(&r, &s).unwrap();
    let (g, _, _) = g.strip_isolated();
    if g.edge_count() == 0 {
        return;
    }
    // general-purpose pebblers apply; equijoin pebbler may not
    let scheme = pebble_dfs_partition(&g).unwrap();
    scheme.validate(&g).unwrap();
    assert!(scheme.effective_cost(&g) <= (5 * g.edge_count()).div_ceil(4));
    let trails = pebble_euler_trails(&g).unwrap();
    trails.validate(&g).unwrap();
}

#[test]
fn spatial_pipeline_filter_refine_and_pebble() {
    let r = workload::clustered_rects(300, 5_000, 60, 5, 200, 101);
    let s = workload::uniform_rects(300, 5_000, 60, 102);
    let pairs = algorithms::spatial::sweep(&r, &s);
    assert_eq!(pairs, algorithms::spatial::pbsm(&r, &s));
    assert_eq!(pairs, algorithms::spatial::rtree(&r, &s));
    assert_eq!(pairs, algorithms::spatial::naive(&r, &s));
    let g = spatial_graph(&r, &s).unwrap();
    assert_eq!(g.edges(), &pairs[..]);
    let (g, _, _) = g.strip_isolated();
    if g.edge_count() == 0 {
        return;
    }
    let scheme = pebble_euler_trails(&g).unwrap();
    scheme.validate(&g).unwrap();
    assert!(scheme.effective_cost(&g) >= bounds::lower_bound_effective(&g));
}

#[test]
fn small_workloads_exactly_solvable_across_predicates() {
    // keep join graphs tiny so the exact solver applies end to end
    let (r, s) = workload::zipf_equijoin(8, 8, 6, 0.4, 103);
    let g = equijoin_graph(&r, &s).unwrap();
    if g.edge_count() > 0 {
        let opt = exact::optimal_effective_cost(&g).unwrap();
        assert_eq!(opt, g.edge_count(), "equijoins are perfect");
    }

    let (r, s) = workload::set_workload(8, 6, 30, 1..=3, 3..=6, 0.6, 104);
    let g = containment_graph(&r, &s).unwrap();
    let (g, _, _) = g.strip_isolated();
    if g.edge_count() > 0 && g.edge_count() <= exact::MAX_EXACT_EDGES {
        let opt = exact::optimal_effective_cost(&g).unwrap();
        assert!(opt >= g.edge_count());
        assert!(opt <= bounds::upper_bound_effective(&g));
    }
}
