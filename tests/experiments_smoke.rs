//! Smoke test: the fast experiments of the harness must PASS when run as
//! part of the test suite (the slow ones — E10's 10^6-edge sweep, E11's
//! exponential exact runs — are exercised by the `experiments` binary and
//! CI's release-mode job instead).

#[test]
fn fast_experiments_pass_in_debug() {
    let fast = ["E2", "E3", "E7", "E9", "E14", "E16", "E17"];
    for e in jp_bench::all_experiments() {
        if !fast.contains(&e.id) {
            continue;
        }
        let (report, pass) = (e.run)();
        assert!(pass, "{} ({}) failed:\n{report}", e.id, e.title);
    }
}

#[test]
fn experiment_ids_match_design_index() {
    let ids: Vec<&str> = jp_bench::all_experiments().iter().map(|e| e.id).collect();
    assert_eq!(ids.len(), 24);
    assert_eq!(ids.first(), Some(&"E1"));
    assert_eq!(ids.last(), Some(&"E24"));
}
