#![forbid(unsafe_code)]
//! `join-predicates` — facade crate for the reproduction of
//! *On the Complexity of Join Predicates* (Cai, Chakaravarthy, Kaushik,
//! Naughton — PODS 2001).
//!
//! The paper models the tuple-level work of a join as a two-pebble game on
//! the bipartite *join graph* and separates join predicates by the optimal
//! pebbling cost of the graphs they can produce and by the complexity of
//! finding optimal pebblings. This crate re-exports the four layers:
//!
//! * [`graph`] — bipartite graphs, line graphs, Hamiltonian paths,
//!   generators (substrate);
//! * [`geometry`] — rectangles, rectilinear regions, R-trees, sweeps
//!   (substrate for spatial-overlap joins);
//! * [`relalg`] — relations, join predicates, join-graph construction,
//!   real join algorithms, the universality/realization lemmas;
//! * [`pebble`] — the paper's contribution: pebbling schemes, cost bounds,
//!   exact and approximate solvers, and the MAX-SNP L-reductions.
//!
//! # Quickstart
//!
//! ```
//! use join_predicates::prelude::*;
//!
//! // Two single-column relations joined by equality.
//! let r = Relation::from_ints("R", [1, 1, 2, 7]);
//! let s = Relation::from_ints("S", [1, 2, 2, 5]);
//! let g = join_graph(&r, &s, &Equality).unwrap();
//!
//! // Equijoin join graphs are unions of complete bipartite graphs and
//! // pebble perfectly (Theorem 3.2): effective cost == number of edges.
//! let scheme = pebble_equijoin(&g).expect("equijoin graph");
//! assert_eq!(scheme.effective_cost(&g), g.edge_count());
//! ```

pub use jp_geometry as geometry;
pub use jp_graph as graph;
pub use jp_pebble as pebble;
pub use jp_relalg as relalg;

/// Convenience re-exports covering the public API most examples need.
pub mod prelude {
    pub use jp_graph::{betti_number, generators, line_graph, BipartiteGraph, Graph, Side, Vertex};

    pub use jp_geometry::{Point, Rect, Region};

    pub use jp_relalg::{
        join_graph,
        predicate::{Equality, JoinPredicate, SetContainment, SetOverlap, SpatialOverlap},
        realize,
        relation::Relation,
        value::Value,
    };

    pub use jp_pebble::{
        approx::{dfs_partition, equijoin::pebble_equijoin, nearest_neighbor, path_cover},
        bounds,
        exact::{optimal_effective_cost, optimal_scheme, optimal_total_cost},
        scheme::{Config, PebblingScheme},
        tsp::Tsp12,
    };
}
